#include "workload/trace_io.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace fbf::workload {

namespace {
constexpr const char* kHeader = "stripe,col,first_row,num_chunks,detect_time_ms";
}

void write_error_trace(std::ostream& os,
                       const std::vector<StripeError>& trace) {
  os << kHeader << "\n";
  // max_digits10 so detect times survive the round trip bit-exactly.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const StripeError& e : trace) {
    os << e.stripe << ',' << e.error.col << ',' << e.error.first_row << ','
       << e.error.num_chunks << ',' << e.detect_time_ms << "\n";
  }
}

std::vector<StripeError> read_error_trace(std::istream& is,
                                          const codes::Layout& layout) {
  std::string line;
  FBF_CHECK(static_cast<bool>(std::getline(is, line)),
            "trace file is empty");
  FBF_CHECK(line == kHeader,
            "trace header mismatch; expected: " + std::string(kHeader));
  std::vector<StripeError> trace;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();  // tolerate CRLF traces
    }
    if (line.empty()) {
      continue;
    }
    std::istringstream row(line);
    StripeError e;
    char c1 = 0;
    char c2 = 0;
    char c3 = 0;
    char c4 = 0;
    row >> e.stripe >> c1 >> e.error.col >> c2 >> e.error.first_row >> c3 >>
        e.error.num_chunks >> c4 >> e.detect_time_ms;
    FBF_CHECK(!row.fail() && c1 == ',' && c2 == ',' && c3 == ',' && c4 == ',',
              "malformed trace row at line " + std::to_string(line_no));
    // A valid row ends at detect_time_ms; anything left over (a fifth
    // comma, a sixth field, stray characters glued to the double) means a
    // mangled trace, not data to silently drop.
    std::string rest;
    row >> rest;
    FBF_CHECK(rest.empty(), "trailing garbage '" + rest +
                                "' after detect_time_ms at line " +
                                std::to_string(line_no));
    FBF_CHECK(e.error.col >= 0 && e.error.col < layout.cols(),
              "trace column out of range at line " + std::to_string(line_no));
    FBF_CHECK(e.error.num_chunks >= 1 && e.error.first_row >= 0 &&
                  e.error.first_row + e.error.num_chunks <= layout.rows(),
              "trace rows out of range at line " + std::to_string(line_no));
    trace.push_back(e);
  }
  return trace;
}

void save_error_trace(const std::string& path,
                      const std::vector<StripeError>& trace) {
  std::ofstream os(path);
  FBF_CHECK(os.good(), "cannot open trace file for writing: " + path);
  write_error_trace(os, trace);
}

std::vector<StripeError> load_error_trace(const std::string& path,
                                          const codes::Layout& layout) {
  std::ifstream is(path);
  FBF_CHECK(is.good(), "cannot open trace file: " + path);
  return read_error_trace(is, layout);
}

}  // namespace fbf::workload
