// Synthetic partial-stripe-error traces (paper §IV-A).
//
// Error model from the paper: contiguous chunk errors on one disk, sizes
// uniform in [1, p-1] chunks (mean (p-1)/2), with spatial and temporal
// locality across stripes (Schroeder et al.: 20-60% of latent sector
// errors have a neighbour within 10 sectors).
#pragma once

#include <cstdint>
#include <vector>

#include "codes/layout.h"
#include "recovery/scheme.h"
#include "util/rng.h"

namespace fbf::workload {

/// One damaged stripe: which stripe, and the contiguous error inside it.
struct StripeError {
  std::uint64_t stripe = 0;
  recovery::PartialStripeError error;
  double detect_time_ms = 0.0;
};

struct ErrorTraceConfig {
  std::uint64_t num_stripes = 1 << 20;  ///< stripes in the array
  int num_errors = 512;                 ///< damaged stripes to generate
  /// Column carrying the errors; -1 draws a uniform random column per
  /// error (multi-disk partial errors, still one column per stripe).
  int target_col = 0;
  /// Probability the next damaged stripe lies within `locality_window`
  /// stripes of the previous one (spatial locality of latent errors).
  double spatial_locality = 0.6;
  std::uint64_t locality_window = 16;
  /// Mean inter-detection gap; 0 means all errors known at t = 0 (offline
  /// reconstruction, the paper's setting).
  double mean_interarrival_ms = 0.0;
  /// Largest error size in chunks; 0 uses the paper's bound
  /// min(rows, p - 1), which equals rows for every supported layout
  /// (all have p - 1 rows). Overrides must stay in [1, rows].
  int max_chunks = 0;
  std::uint64_t seed = 42;
};

/// Generates a trace of distinct damaged stripes sorted by detect time.
/// Error sizes are uniform in [1, config.max_chunks] (default: the full
/// column height, the paper's [1, p-1]); start rows uniform over the
/// legal range. Fully deterministic given the seed.
std::vector<StripeError> generate_error_trace(const codes::Layout& layout,
                                              const ErrorTraceConfig& config);

}  // namespace fbf::workload
