#include "workload/errors.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace fbf::workload {

std::vector<StripeError> generate_error_trace(const codes::Layout& layout,
                                              const ErrorTraceConfig& config) {
  FBF_CHECK(config.num_errors > 0, "trace needs at least one error");
  FBF_CHECK(config.num_stripes >=
                static_cast<std::uint64_t>(config.num_errors),
            "more damaged stripes than stripes in the array");
  FBF_CHECK(config.target_col == -1 ||
                (config.target_col >= 0 &&
                 config.target_col < layout.cols()),
            "target column out of range");
  FBF_CHECK(config.spatial_locality >= 0.0 &&
                config.spatial_locality <= 1.0,
            "spatial locality must be a probability");
  // Error sizes are clamped to one column of one stripe: [1, rows]. The
  // paper's bound is min(rows, p-1) == rows, since every supported layout
  // has p-1 rows.
  const int max_chunks =
      config.max_chunks == 0 ? layout.rows() : config.max_chunks;
  FBF_CHECK(max_chunks >= 1 && max_chunks <= layout.rows(),
            "max error size must be in [1, rows]; got " +
                std::to_string(config.max_chunks) + " with " +
                std::to_string(layout.rows()) + " rows");

  util::Rng rng(config.seed);
  std::unordered_set<std::uint64_t> used;
  std::vector<StripeError> trace;
  trace.reserve(static_cast<std::size_t>(config.num_errors));

  std::uint64_t prev_stripe = 0;
  double clock_ms = 0.0;
  const int rows = layout.rows();
  for (int i = 0; i < config.num_errors; ++i) {
    // Choose a fresh stripe, biased toward the neighbourhood of the
    // previous error with probability spatial_locality.
    std::uint64_t stripe = 0;
    for (int attempt = 0;; ++attempt) {
      if (i > 0 && rng.bernoulli(config.spatial_locality) && attempt < 8) {
        const auto offset = static_cast<std::uint64_t>(rng.uniform_int(
            1, static_cast<std::int64_t>(config.locality_window)));
        stripe = (prev_stripe + offset) % config.num_stripes;
      } else {
        stripe = static_cast<std::uint64_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.num_stripes) - 1));
      }
      if (used.insert(stripe).second) {
        break;
      }
      if (attempt > 64) {  // dense traces: scan forward to a free stripe
        while (!used.insert(stripe).second) {
          stripe = (stripe + 1) % config.num_stripes;
        }
        break;
      }
    }
    prev_stripe = stripe;

    StripeError e;
    e.stripe = stripe;
    e.error.col = config.target_col >= 0
                      ? config.target_col
                      : static_cast<int>(rng.uniform_int(
                            0, layout.cols() - 1));
    e.error.num_chunks = static_cast<int>(rng.uniform_int(1, max_chunks));
    e.error.first_row = static_cast<int>(
        rng.uniform_int(0, rows - e.error.num_chunks));
    if (config.mean_interarrival_ms > 0.0) {
      clock_ms += rng.exponential(config.mean_interarrival_ms);
    }
    e.detect_time_ms = clock_ms;
    trace.push_back(e);
  }
  std::sort(trace.begin(), trace.end(),
            [](const StripeError& a, const StripeError& b) {
              return a.detect_time_ms < b.detect_time_ms ||
                     (a.detect_time_ms == b.detect_time_ms &&
                      a.stripe < b.stripe);
            });
  return trace;
}

}  // namespace fbf::workload
