// Priority-dictionary helpers (paper Table II / Table III).
#pragma once

#include <string>
#include <vector>

#include "codes/layout.h"
#include "recovery/scheme.h"

namespace fbf::recovery {

/// Breakdown of a scheme's priority dictionary by level.
struct PrioritySummary {
  int priority3 = 0;  ///< shared by >= three selected chains
  int priority2 = 0;  ///< shared by two
  int priority1 = 0;  ///< referenced once

  int total() const { return priority3 + priority2 + priority1; }
};

PrioritySummary summarize_priorities(const RecoveryScheme& scheme);

/// Cells at a given priority level, for Table-III style listings.
std::vector<codes::Cell> cells_at_priority(const codes::Layout& layout,
                                           const RecoveryScheme& scheme,
                                           int level);

/// Renders a Table-III style listing ("priority -> chunk list").
std::string priority_table(const codes::Layout& layout,
                           const RecoveryScheme& scheme);

}  // namespace fbf::recovery
