#include "recovery/scheme.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <set>

#include "codes/codec.h"
#include "util/check.h"

namespace fbf::recovery {

using codes::Cell;
using codes::Chain;
using codes::Direction;
using codes::Layout;

const char* to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::HorizontalFirst:
      return "horizontal";
    case SchemeKind::RoundRobin:
      return "round-robin";
    case SchemeKind::GreedyMinIO:
      return "greedy";
    case SchemeKind::ExhaustiveMinIO:
      return "exhaustive";
  }
  return "?";
}

SchemeKind scheme_from_string(const std::string& name) {
  if (name == "horizontal" || name == "typical") {
    return SchemeKind::HorizontalFirst;
  }
  if (name == "round-robin" || name == "roundrobin" || name == "fbf") {
    return SchemeKind::RoundRobin;
  }
  if (name == "greedy") {
    return SchemeKind::GreedyMinIO;
  }
  if (name == "exhaustive") {
    return SchemeKind::ExhaustiveMinIO;
  }
  FBF_CHECK(false, "unknown scheme kind: " + name);
  return SchemeKind::RoundRobin;  // unreachable
}

std::vector<Cell> PartialStripeError::cells() const {
  std::vector<Cell> out;
  out.reserve(static_cast<std::size_t>(num_chunks));
  for (int r = first_row; r < first_row + num_chunks; ++r) {
    out.push_back(Cell{static_cast<std::int16_t>(r),
                       static_cast<std::int16_t>(col)});
  }
  return out;
}

namespace {

/// A chain is usable for `target` when every lost member other than the
/// target has already been recovered (so peeling can XOR the chain now).
bool chain_usable(const Layout& layout, const Chain& chain, Cell target,
                  const std::vector<bool>& pending_lost) {
  for (const Cell& c : chain.cells) {
    if (c == target) {
      continue;
    }
    if (pending_lost[static_cast<std::size_t>(layout.cell_index(c))]) {
      return false;
    }
  }
  return true;
}

/// Marginal fetches a chain would add: members that are neither already
/// scheduled for fetch, nor recovered lost cells, nor the target.
int marginal_new_fetches(const Layout& layout, const Chain& chain,
                         Cell target, const std::vector<bool>& will_have) {
  int fresh = 0;
  for (const Cell& c : chain.cells) {
    if (c == target) {
      continue;
    }
    if (!will_have[static_cast<std::size_t>(layout.cell_index(c))]) {
      ++fresh;
    }
  }
  return fresh;
}

Direction rotate(Direction d, int by) {
  return static_cast<Direction>((static_cast<int>(d) + by) %
                                codes::kNumDirections);
}

}  // namespace

RecoveryScheme generate_scheme(const Layout& layout,
                               const std::vector<Cell>& lost,
                               SchemeKind kind) {
  FBF_CHECK(!lost.empty(), "generate_scheme with no lost cells");
  std::vector<Cell> ordered = lost;
  std::sort(ordered.begin(), ordered.end());
  FBF_CHECK(std::adjacent_find(ordered.begin(), ordered.end()) ==
                ordered.end(),
            "duplicate lost cells");

  const auto n_cells = static_cast<std::size_t>(layout.num_cells());
  std::vector<bool> pending(n_cells, false);
  for (const Cell& c : ordered) {
    pending[static_cast<std::size_t>(layout.cell_index(c))] = true;
  }

  // Cells that will be available in cache/spare once scheduled: scheduled
  // fetches plus already-recovered lost cells. Used by the greedy strategy.
  std::vector<bool> will_have(n_cells, false);

  RecoveryScheme scheme;
  scheme.priority.assign(n_cells, 0);

  if (kind == SchemeKind::ExhaustiveMinIO) {
    FBF_CHECK(ordered.size() <= 10,
              "exhaustive scheme search limited to 10 lost cells");
    // Branch-and-bound over every per-cell chain choice, peeling in the
    // fixed row order. `have` marks cells available without a new fetch
    // (already-scheduled fetches and recovered targets).
    std::vector<bool> have(n_cells, false);
    std::vector<int> chosen;
    std::vector<int> best_chains;
    int best_distinct = std::numeric_limits<int>::max();
    std::function<void(std::size_t, int)> dfs = [&](std::size_t i,
                                                    int distinct) {
      if (distinct >= best_distinct) {
        return;  // cannot improve
      }
      if (i == ordered.size()) {
        best_distinct = distinct;
        best_chains = chosen;
        return;
      }
      const Cell target = ordered[i];
      const auto tidx = static_cast<std::size_t>(layout.cell_index(target));
      for (int id : layout.chains_containing(target)) {
        const Chain& ch = layout.chain(id);
        if (!chain_usable(layout, ch, target, pending)) {
          continue;
        }
        std::vector<std::size_t> newly;
        for (const Cell& c : ch.cells) {
          if (c == target) {
            continue;
          }
          const auto idx = static_cast<std::size_t>(layout.cell_index(c));
          if (!have[idx]) {
            have[idx] = true;
            newly.push_back(idx);
          }
        }
        const bool target_was_available = have[tidx];
        have[tidx] = true;
        pending[tidx] = false;
        chosen.push_back(id);
        dfs(i + 1, distinct + static_cast<int>(newly.size()));
        chosen.pop_back();
        pending[tidx] = true;
        have[tidx] = target_was_available;
        for (std::size_t idx : newly) {
          have[idx] = false;
        }
      }
    };
    dfs(0, 0);
    FBF_CHECK(best_distinct != std::numeric_limits<int>::max(),
              "no feasible chain assignment found in " + layout.name());
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      scheme.steps.push_back(RecoveryStep{ordered[i], best_chains[i]});
      scheme.total_references += static_cast<int>(
          layout.chain(best_chains[i]).cells.size()) - 1;
    }
    // Fall through to the shared priority/fetch-set computation below.
  } else {
  std::vector<bool> done(ordered.size(), false);
  std::size_t n_done = 0;
  while (n_done < ordered.size()) {
    bool progressed = false;
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      if (done[i]) {
        continue;
      }
      const Cell target = ordered[i];
      // Direction preference: HorizontalFirst always starts at horizontal;
      // RoundRobin starts at (lost-chunk ordinal mod 3) — the paper's
      // "looping parity chains of three directions"; Greedy ignores order.
      const Direction start =
          kind == SchemeKind::RoundRobin
              ? static_cast<Direction>(static_cast<int>(i) %
                                       codes::kNumDirections)
              : Direction::Horizontal;

      const Chain* chosen = nullptr;
      if (kind == SchemeKind::GreedyMinIO) {
        int best_cost = -1;
        for (int id : layout.chains_containing(target)) {
          const Chain& ch = layout.chain(id);
          if (!chain_usable(layout, ch, target, pending)) {
            continue;
          }
          const int cost = marginal_new_fetches(layout, ch, target, will_have);
          if (chosen == nullptr || cost < best_cost ||
              (cost == best_cost && ch.cells.size() < chosen->cells.size())) {
            chosen = &ch;
            best_cost = cost;
          }
        }
      } else {
        for (int step = 0; step < codes::kNumDirections && !chosen; ++step) {
          const Direction d = rotate(start, step);
          const Chain* best = nullptr;
          for (int id : layout.chains_containing(target, d)) {
            const Chain& ch = layout.chain(id);
            if (!chain_usable(layout, ch, target, pending)) {
              continue;
            }
            if (best == nullptr || ch.cells.size() < best->cells.size() ||
                (ch.cells.size() == best->cells.size() && ch.id < best->id)) {
              best = &ch;
            }
          }
          chosen = best;
        }
      }

      if (chosen == nullptr) {
        continue;  // all candidate chains still blocked by pending cells
      }

      scheme.steps.push_back(RecoveryStep{target, chosen->id});
      scheme.total_references += static_cast<int>(chosen->cells.size()) - 1;
      for (const Cell& c : chosen->cells) {
        if (c != target) {
          will_have[static_cast<std::size_t>(layout.cell_index(c))] = true;
        }
      }
      pending[static_cast<std::size_t>(layout.cell_index(target))] = false;
      will_have[static_cast<std::size_t>(layout.cell_index(target))] = true;
      done[i] = true;
      ++n_done;
      progressed = true;
    }
    FBF_CHECK(progressed,
              "no usable chain for remaining lost cells in " + layout.name() +
                  " — pattern not peelable with one chain per cell");
  }
  }

  // Priorities: for every selected chain, each member other than that
  // step's target counts one reference (Table II, capped at 3).
  std::vector<int> refs(n_cells, 0);
  for (const RecoveryStep& step : scheme.steps) {
    const Chain& ch = layout.chain(step.chain_id);
    for (const Cell& c : ch.cells) {
      if (c != step.target) {
        ++refs[static_cast<std::size_t>(layout.cell_index(c))];
      }
    }
  }
  std::vector<bool> is_lost(n_cells, false);
  for (const Cell& c : ordered) {
    is_lost[static_cast<std::size_t>(layout.cell_index(c))] = true;
  }
  for (std::size_t idx = 0; idx < n_cells; ++idx) {
    if (refs[idx] > 0) {
      scheme.priority[idx] =
          static_cast<std::uint8_t>(std::min(refs[idx], 3));
      if (!is_lost[idx]) {
        scheme.fetch_cells.push_back(layout.cell_at(static_cast<int>(idx)));
      }
    } else if (is_lost[idx]) {
      // Recovered cells never referenced again still pass through the
      // cache on their way to the spare area; lowest priority.
      scheme.priority[idx] = 1;
    }
  }
  return scheme;
}

FaultScheme generate_fault_scheme(const Layout& layout,
                                  const std::vector<Cell>& lost) {
  FBF_CHECK(!lost.empty(), "generate_fault_scheme with no lost cells");
  std::vector<Cell> ordered = lost;
  std::sort(ordered.begin(), ordered.end());
  FBF_CHECK(std::adjacent_find(ordered.begin(), ordered.end()) ==
                ordered.end(),
            "duplicate lost cells");

  const auto n_cells = static_cast<std::size_t>(layout.num_cells());
  FaultScheme out;
  out.scheme.priority.assign(n_cells, 0);

  const codes::PeelPlan plan = codes::plan_peeling(layout, ordered);
  std::vector<int> refs(n_cells, 0);
  for (const codes::PeelPlan::Step& step : plan.steps) {
    out.scheme.steps.push_back(RecoveryStep{step.target, step.chain_id});
    const Chain& ch = layout.chain(step.chain_id);
    out.scheme.total_references += static_cast<int>(ch.cells.size()) - 1;
    for (const Cell& c : ch.cells) {
      if (c != step.target) {
        ++refs[static_cast<std::size_t>(layout.cell_index(c))];
      }
    }
  }
  out.gauss_cells = plan.gauss_cells;
  if (!out.gauss_cells.empty()) {
    std::vector<bool> is_gauss(n_cells, false);
    for (const Cell& c : out.gauss_cells) {
      is_gauss[static_cast<std::size_t>(layout.cell_index(c))] = true;
    }
    for (const Chain& ch : layout.chains()) {
      const bool involved = std::any_of(
          ch.cells.begin(), ch.cells.end(), [&](const Cell& c) {
            return is_gauss[static_cast<std::size_t>(layout.cell_index(c))];
          });
      if (!involved) {
        continue;
      }
      out.gauss_chains.push_back(ch.id);
      for (const Cell& c : ch.cells) {
        const auto idx = static_cast<std::size_t>(layout.cell_index(c));
        if (!is_gauss[idx]) {
          ++refs[idx];
          ++out.scheme.total_references;
        }
      }
    }
  }

  // Shared with generate_scheme: priorities = capped reference counts,
  // fetch set = referenced surviving cells.
  std::vector<bool> is_lost(n_cells, false);
  for (const Cell& c : ordered) {
    is_lost[static_cast<std::size_t>(layout.cell_index(c))] = true;
  }
  for (std::size_t idx = 0; idx < n_cells; ++idx) {
    if (refs[idx] > 0) {
      out.scheme.priority[idx] =
          static_cast<std::uint8_t>(std::min(refs[idx], 3));
      if (!is_lost[idx]) {
        out.scheme.fetch_cells.push_back(
            layout.cell_at(static_cast<int>(idx)));
      }
    } else if (is_lost[idx]) {
      out.scheme.priority[idx] = 1;
    }
  }
  return out;
}

RecoveryScheme generate_scheme(const Layout& layout,
                               const PartialStripeError& error,
                               SchemeKind kind) {
  FBF_CHECK(error.num_chunks >= 1 && error.num_chunks <= layout.rows(),
            "partial stripe error size out of range");
  FBF_CHECK(error.first_row >= 0 &&
                error.first_row + error.num_chunks <= layout.rows(),
            "partial stripe error rows out of range");
  FBF_CHECK(error.col >= 0 && error.col < layout.cols(),
            "partial stripe error column out of range");
  return generate_scheme(layout, error.cells(), kind);
}

}  // namespace fbf::recovery
