#include "recovery/write_plan.h"

#include "util/check.h"

namespace fbf::recovery {

const char* to_string(WritePlanKind kind) {
  switch (kind) {
    case WritePlanKind::Rmw:
      return "RMW";
    case WritePlanKind::Rcw:
      return "RCW";
    case WritePlanKind::Direct:
      return "direct";
  }
  return "?";
}

namespace {

/// Update closure of `target`, in encode order. BFS over "chain contains a
/// changed cell -> its parity changes": writing the target changes the
/// parity of every chain through it, and a changed parity re-triggers any
/// chain holding it as a member (RTP's diagonals over the row-parity
/// column). Encode order guarantees each chain's changed inputs are
/// produced before the chain itself is processed.
std::vector<ParityUpdate> parity_closure(const codes::Layout& layout,
                                         codes::Cell target,
                                         const CellPredicate& damaged) {
  const std::size_t num_cells = static_cast<std::size_t>(layout.num_cells());
  std::vector<char> affected(num_cells, 0);
  std::vector<char> chain_hit(layout.chains().size(), 0);
  std::vector<codes::Cell> queue{target};
  affected[static_cast<std::size_t>(layout.cell_index(target))] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const codes::Cell c = queue[head];
    for (int id : layout.chains_containing(c)) {
      const codes::Chain& chain = layout.chain(id);
      if (chain.parity_cell == c) {
        continue;  // c's own defining chain; c is the output, not an input
      }
      chain_hit[static_cast<std::size_t>(id)] = 1;
      const std::size_t p =
          static_cast<std::size_t>(layout.cell_index(chain.parity_cell));
      if (!affected[p]) {
        affected[p] = 1;
        queue.push_back(chain.parity_cell);
      }
    }
  }
  std::vector<ParityUpdate> updates;
  for (int id : layout.encode_order()) {
    if (chain_hit[static_cast<std::size_t>(id)]) {
      const codes::Cell parity = layout.chain(id).parity_cell;
      updates.push_back(ParityUpdate{id, parity, damaged(parity)});
    }
  }
  return updates;
}

void add_read(WritePlan& plan, std::vector<char>& seen,
              const codes::Layout& layout, codes::Cell c,
              const CellPredicate& cached, const CellPredicate& damaged) {
  char& mark = seen[static_cast<std::size_t>(layout.cell_index(c))];
  if (mark) {
    return;
  }
  mark = 1;
  if (cached(c)) {
    plan.cache_reads.push_back(c);
  } else if (damaged(c)) {
    plan.feasible = false;  // unreadable source, no spare copy yet
  } else {
    plan.disk_reads.push_back(c);
  }
}

}  // namespace

WritePlan plan_rmw(const codes::Layout& layout, codes::Cell target,
                   const CellPredicate& cached, const CellPredicate& damaged) {
  WritePlan plan;
  plan.target = target;
  if (layout.kind(target) == codes::CellKind::Parity) {
    return plan;  // Direct
  }
  plan.kind = WritePlanKind::Rmw;
  plan.updates = parity_closure(layout, target, damaged);
  if (plan.parity_writes() == 0) {
    // Every closure parity is damaged: nothing to rewrite, and the deltas
    // are moot — recovery rebuilds each parity from post-write members.
    return plan;
  }
  std::vector<char> seen(static_cast<std::size_t>(layout.num_cells()), 0);
  // The delta needs the old target once; a damaged chain needs no parity
  // read (its delta propagates symbolically, the write is skipped).
  add_read(plan, seen, layout, target, cached, damaged);
  for (const ParityUpdate& u : plan.updates) {
    if (!u.damaged) {
      add_read(plan, seen, layout, u.parity, cached, damaged);
    }
  }
  return plan;
}

WritePlan plan_rcw(const codes::Layout& layout, codes::Cell target,
                   const CellPredicate& cached, const CellPredicate& damaged) {
  WritePlan plan;
  plan.target = target;
  if (layout.kind(target) == codes::CellKind::Parity) {
    return plan;  // Direct
  }
  plan.kind = WritePlanKind::Rcw;
  plan.updates = parity_closure(layout, target, damaged);
  const std::size_t num_cells = static_cast<std::size_t>(layout.num_cells());
  std::vector<char> closure_parity(num_cells, 0);
  for (const ParityUpdate& u : plan.updates) {
    closure_parity[static_cast<std::size_t>(layout.cell_index(u.parity))] = 1;
  }
  // Backward pass over the encode-ordered closure: a chain's sources are
  // needed when its parity is actually written, or when its phantom new
  // value feeds a later closure chain (a damaged parity that another chain
  // holds as a member must still be *computed*, just not written).
  std::vector<char> needed(num_cells, 0);
  std::vector<char> need_chain(plan.updates.size(), 0);
  for (std::size_t i = plan.updates.size(); i-- > 0;) {
    const ParityUpdate& u = plan.updates[i];
    const std::size_t p = static_cast<std::size_t>(layout.cell_index(u.parity));
    if (!u.damaged || needed[p]) {
      need_chain[i] = 1;
      for (const codes::Cell& m : layout.chain(u.chain_id).cells) {
        if (!(m == u.parity)) {
          needed[static_cast<std::size_t>(layout.cell_index(m))] = 1;
        }
      }
    }
  }
  // Collect the member reads in forward (encode) order: everything except
  // the target (new bytes in hand) and closure parities (just computed).
  std::vector<char> seen(num_cells, 0);
  seen[static_cast<std::size_t>(layout.cell_index(target))] = 1;
  for (std::size_t i = 0; i < plan.updates.size(); ++i) {
    if (!need_chain[i]) {
      continue;
    }
    const ParityUpdate& u = plan.updates[i];
    for (const codes::Cell& m : layout.chain(u.chain_id).cells) {
      if (!(m == u.parity) &&
          !closure_parity[static_cast<std::size_t>(layout.cell_index(m))]) {
        add_read(plan, seen, layout, m, cached, damaged);
      }
    }
  }
  return plan;
}

WritePlan plan_partial_stripe_write(const codes::Layout& layout,
                                    codes::Cell target,
                                    const CellPredicate& cached,
                                    const CellPredicate& damaged) {
  if (layout.kind(target) == codes::CellKind::Parity) {
    WritePlan plan;
    plan.target = target;
    return plan;
  }
  WritePlan rmw = plan_rmw(layout, target, cached, damaged);
  WritePlan rcw = plan_rcw(layout, target, cached, damaged);
  if (!rcw.feasible) {
    return rmw;
  }
  if (!rmw.feasible) {
    return rcw;
  }
  return rcw.io_count() < rmw.io_count() ? rcw : rmw;
}

}  // namespace fbf::recovery
