// Parity-update planner for partial-stripe writes.
//
// Writing one data chunk dirties every parity whose chain contains it —
// and, in RTP-style layouts whose diagonal chains span the row-parity
// column, updating a row parity dirties a diagonal parity in turn. The
// planner computes that transitive *update closure* (ordered by the
// layout's encode order, so each parity's inputs are produced before it)
// and prices the two classic update strategies against it:
//
//  - Read-modify-write (RMW): read the old target and each live closure
//    parity, XOR the delta through. Reads = 1 + live parities.
//  - Reconstruct-write (RCW): recompute each closure parity from the
//    current values of its other chain members. Reads = the deduped
//    member set that is not already known (the target's new bytes, other
//    closure parities' just-computed values).
//
// Both strategies skip chains whose parity is damaged and unrepaired: the
// rebuild regenerates that parity from the members' *current* (post-write)
// values, so a degraded write stays consistent with zero extra I/O — this
// replaces the foreground server's old "park on damaged parity" rule.
// Sources the cache already holds cost no disk read, which is what makes
// the RMW/RCW choice cache-state-dependent rather than pure geometry.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "codes/layout.h"

namespace fbf::recovery {

enum class WritePlanKind : std::uint8_t {
  Rmw,     ///< delta through old target + old parities
  Rcw,     ///< recompute parities from the other chain members
  Direct,  ///< parity-cell target: overwrite in place, no chain updates
};

const char* to_string(WritePlanKind kind);

/// One closure chain: its parity is rewritten unless `damaged`, in which
/// case the chain is skipped and recovery regenerates the parity.
struct ParityUpdate {
  int chain_id = -1;
  codes::Cell parity;
  bool damaged = false;
};

struct WritePlan {
  WritePlanKind kind = WritePlanKind::Direct;
  codes::Cell target;
  /// Update closure in encode order: every chain whose parity changes
  /// (transitively) when the target is written.
  std::vector<ParityUpdate> updates;
  /// Source chunks read from disk (deduped, deterministic order).
  std::vector<codes::Cell> disk_reads;
  /// Source chunks the cache serves (no disk I/O — the planning payoff).
  std::vector<codes::Cell> cache_reads;
  /// False when a required source is damaged, unrepaired, and uncached.
  bool feasible = true;

  int parity_writes() const {
    int n = 0;
    for (const ParityUpdate& u : updates) {
      n += u.damaged ? 0 : 1;
    }
    return n;
  }
  /// Disk operations the plan costs (cache reads are free).
  int io_count() const {
    return static_cast<int>(disk_reads.size()) + parity_writes();
  }
  bool degraded() const {
    for (const ParityUpdate& u : updates) {
      if (u.damaged) {
        return true;
      }
    }
    return false;
  }
};

/// `cached(c)` — the buffer cache holds c's current bytes. `damaged(c)` —
/// c is lost and its stripe not yet repaired (the original sector is
/// unreadable and the spare copy does not exist yet).
using CellPredicate = std::function<bool(codes::Cell)>;

/// The two candidate plans, exposed separately so the property test can
/// assert the chooser never picks the costlier feasible one.
WritePlan plan_rmw(const codes::Layout& layout, codes::Cell target,
                   const CellPredicate& cached, const CellPredicate& damaged);
WritePlan plan_rcw(const codes::Layout& layout, codes::Cell target,
                   const CellPredicate& cached, const CellPredicate& damaged);

/// Minimum-I/O feasible plan (ties go to RMW, the classic small-write
/// default). Parity-cell targets get a Direct plan. The caller must park
/// writes whose target is damaged and uncached before planning; a plan
/// with feasible == false means no strategy can source its reads.
WritePlan plan_partial_stripe_write(const codes::Layout& layout,
                                    codes::Cell target,
                                    const CellPredicate& cached,
                                    const CellPredicate& damaged);

}  // namespace fbf::recovery
