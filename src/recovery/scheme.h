// Partial-stripe recovery scheme generation (paper §III-A step 1).
//
// Given the lost cells of one stripe, a generator selects one parity chain
// per lost cell such that a peeling order exists (every chain, at its turn,
// has its target as the only not-yet-recovered member). Three strategies:
//
//  - HorizontalFirst: the "typical" scheme the paper compares against —
//    horizontal chains only, falling back across directions when the
//    horizontal chain is unusable (e.g. errors on a parity column).
//  - RoundRobin: the paper's FBF generator — "simply looping parity chains
//    of three directions", which maximizes cross-direction chunk sharing.
//  - GreedyMinIO: extension/ablation — per lost cell, pick the usable chain
//    adding the fewest new fetches.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/layout.h"

namespace fbf::recovery {

enum class SchemeKind : std::uint8_t {
  HorizontalFirst,
  RoundRobin,
  GreedyMinIO,
  /// Branch-and-bound over every per-cell chain choice (fixed row-order
  /// peeling): the true minimum of distinct reads. Exponential in the
  /// number of lost chunks — only for small errors / ablation baselines.
  ExhaustiveMinIO,
};

const char* to_string(SchemeKind kind);
SchemeKind scheme_from_string(const std::string& name);

/// Contiguous chunk error on one disk of one stripe — the paper's partial
/// stripe error model (size in [1, p-1] chunks).
struct PartialStripeError {
  int col = 0;
  int first_row = 0;
  int num_chunks = 1;

  std::vector<codes::Cell> cells() const;
  friend auto operator<=>(const PartialStripeError&,
                          const PartialStripeError&) = default;
};

/// One recovery step: reconstruct `target` by XORing the other members of
/// chain `chain_id`.
struct RecoveryStep {
  codes::Cell target;
  int chain_id = -1;
};

/// A complete scheme for one stripe's lost cells.
struct RecoveryScheme {
  std::vector<RecoveryStep> steps;  ///< valid peeling order

  /// Priority (1..3) by cell index for every cell the scheme touches;
  /// 0 for untouched cells. Priority = number of selected chains that
  /// reference the cell, capped at 3 (Table II).
  std::vector<std::uint8_t> priority;

  /// Distinct surviving cells fetched from disks (excludes lost cells).
  std::vector<codes::Cell> fetch_cells;

  /// Total chunk references issued while recovering (sum over steps of
  /// chain size - 1). distinct_reads() <= total_references().
  int total_references = 0;

  int distinct_reads() const { return static_cast<int>(fetch_cells.size()); }
};

/// Generates a scheme; throws CheckError if the lost set is not recoverable
/// by single-chain peeling (callers guarantee partial-stripe patterns,
/// which always are — verified in tests for every (col, start, len)).
RecoveryScheme generate_scheme(const codes::Layout& layout,
                               const std::vector<codes::Cell>& lost,
                               SchemeKind kind);

/// Convenience overload for the canonical single-disk contiguous error.
RecoveryScheme generate_scheme(const codes::Layout& layout,
                               const PartialStripeError& error,
                               SchemeKind kind);

/// Fault-path plan for an arbitrary lost-cell set (sim/faults): the
/// peelable part as a regular RecoveryScheme (steps in peeling order),
/// plus the cells peeling cannot reach — solved by the Gauss fallback —
/// and the distinct chains whose members that solve reads. Unlike
/// generate_scheme this never throws on non-peelable patterns; callers
/// check codes::erasure_decodable first and escalate when it fails.
struct FaultScheme {
  RecoveryScheme scheme;
  /// Cells needing the Gauss fallback, in layout cell-index order.
  std::vector<codes::Cell> gauss_cells;
  /// Chains (ids) with at least one Gauss cell; the solve reads each
  /// chain's non-Gauss members.
  std::vector<int> gauss_chains;
};

FaultScheme generate_fault_scheme(const codes::Layout& layout,
                                  const std::vector<codes::Cell>& lost);

}  // namespace fbf::recovery
