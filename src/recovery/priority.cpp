#include "recovery/priority.h"

#include "util/check.h"

namespace fbf::recovery {

PrioritySummary summarize_priorities(const RecoveryScheme& scheme) {
  PrioritySummary s;
  for (std::uint8_t p : scheme.priority) {
    switch (p) {
      case 3:
        ++s.priority3;
        break;
      case 2:
        ++s.priority2;
        break;
      case 1:
        ++s.priority1;
        break;
      default:
        break;
    }
  }
  return s;
}

std::vector<codes::Cell> cells_at_priority(const codes::Layout& layout,
                                           const RecoveryScheme& scheme,
                                           int level) {
  FBF_CHECK(level >= 1 && level <= 3, "priority level must be 1..3");
  std::vector<codes::Cell> out;
  for (std::size_t idx = 0; idx < scheme.priority.size(); ++idx) {
    if (scheme.priority[idx] == level) {
      out.push_back(layout.cell_at(static_cast<int>(idx)));
    }
  }
  return out;
}

std::string priority_table(const codes::Layout& layout,
                           const RecoveryScheme& scheme) {
  std::string out;
  for (int level = 3; level >= 1; --level) {
    out += "priority " + std::to_string(level) + ": ";
    bool first = true;
    for (const codes::Cell& c : cells_at_priority(layout, scheme, level)) {
      if (!first) {
        out += ", ";
      }
      out += codes::to_string(c);
      first = false;
    }
    out += "\n";
  }
  return out;
}

}  // namespace fbf::recovery
