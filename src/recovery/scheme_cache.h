// Memoized scheme generation (paper §III-A: priorities "can be enumerated
// once a same format of partial stripe error is detected again, and no more
// calculation is required").
//
// The key is the error *format* — (column, first row, length, strategy) —
// which is stripe-independent: a scheme computed for one stripe applies to
// every stripe with the same format.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "recovery/scheme.h"

namespace fbf::recovery {

class SchemeCache {
 public:
  explicit SchemeCache(const codes::Layout& layout) : layout_(&layout) {}

  /// Returns the memoized scheme for the error format, generating it on
  /// first use. The returned pointer stays valid for the cache's lifetime.
  std::shared_ptr<const RecoveryScheme> get(const PartialStripeError& error,
                                            SchemeKind kind);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return schemes_.size(); }

 private:
  /// Error formats packed into one 64-bit word (col/row/len/kind each fit
  /// comfortably in 16 bits), hashed in one shot — this lookup sits on the
  /// per-stripe path of every experiment.
  static std::uint64_t make_key(const PartialStripeError& error,
                                SchemeKind kind);

  const codes::Layout* layout_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const RecoveryScheme>>
      schemes_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace fbf::recovery
