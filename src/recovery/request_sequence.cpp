#include "recovery/request_sequence.h"

#include <algorithm>

#include "util/check.h"

namespace fbf::recovery {

void build_request_sequence(const codes::Layout& layout,
                            const RecoveryScheme& scheme,
                            std::vector<ChunkOp>& ops) {
  ops.clear();
  ops.reserve(static_cast<std::size_t>(scheme.total_references) +
              scheme.steps.size());
  for (std::size_t s = 0; s < scheme.steps.size(); ++s) {
    const RecoveryStep& step = scheme.steps[s];
    const codes::Chain& chain = layout.chain(step.chain_id);
    for (const codes::Cell& c : chain.cells) {
      if (c == step.target) {
        continue;
      }
      const auto idx = static_cast<std::size_t>(layout.cell_index(c));
      ChunkOp op;
      op.kind = OpKind::Read;
      op.cell = c;
      op.step = static_cast<int>(s);
      op.priority = std::max<std::uint8_t>(scheme.priority[idx], 1);
      ops.push_back(op);
    }
    const auto tidx = static_cast<std::size_t>(
        layout.cell_index(step.target));
    ChunkOp write;
    write.kind = OpKind::WriteSpare;
    write.cell = step.target;
    write.step = static_cast<int>(s);
    write.priority = std::max<std::uint8_t>(scheme.priority[tidx], 1);
    ops.push_back(write);
  }
}

std::vector<ChunkOp> build_request_sequence(const codes::Layout& layout,
                                            const RecoveryScheme& scheme) {
  std::vector<ChunkOp> ops;
  build_request_sequence(layout, scheme, ops);
  return ops;
}

void append_gauss_ops(const codes::Layout& layout, const FaultScheme& fs,
                      std::vector<ChunkOp>& ops) {
  if (fs.gauss_cells.empty()) {
    return;
  }
  std::vector<bool> is_gauss(static_cast<std::size_t>(layout.num_cells()),
                             false);
  for (const codes::Cell& c : fs.gauss_cells) {
    is_gauss[static_cast<std::size_t>(layout.cell_index(c))] = true;
  }
  for (int chain_id : fs.gauss_chains) {
    for (const codes::Cell& c : layout.chain(chain_id).cells) {
      const auto idx = static_cast<std::size_t>(layout.cell_index(c));
      if (is_gauss[idx]) {
        continue;
      }
      ChunkOp op;
      op.kind = OpKind::Read;
      op.cell = c;
      op.step = kGaussStep;
      op.priority = std::max<std::uint8_t>(fs.scheme.priority[idx], 1);
      ops.push_back(op);
    }
  }
  for (const codes::Cell& c : fs.gauss_cells) {
    const auto idx = static_cast<std::size_t>(layout.cell_index(c));
    ChunkOp write;
    write.kind = OpKind::WriteSpare;
    write.cell = c;
    write.step = kGaussStep;
    write.priority = std::max<std::uint8_t>(fs.scheme.priority[idx], 1);
    ops.push_back(write);
  }
}

int count_reads(const std::vector<ChunkOp>& ops) {
  return static_cast<int>(
      std::count_if(ops.begin(), ops.end(), [](const ChunkOp& op) {
        return op.kind == OpKind::Read;
      }));
}

}  // namespace fbf::recovery
