// Flattens a RecoveryScheme into the ordered chunk operations the RAID
// controller issues — the access trace seen by the buffer cache.
#pragma once

#include <cstdint>
#include <vector>

#include "recovery/scheme.h"

namespace fbf::recovery {

enum class OpKind : std::uint8_t {
  Read,        ///< fetch a surviving (or previously recovered) chunk
  WriteSpare,  ///< write a freshly recovered chunk to the spare area
};

struct ChunkOp {
  OpKind kind = OpKind::Read;
  codes::Cell cell;
  int step = 0;                ///< index into RecoveryScheme::steps
  std::uint8_t priority = 1;   ///< cache priority of the chunk (Table II)
};

/// Ops in issue order: for each step, read every chain member except the
/// target (row-major order within the chain), then write the recovered
/// target to spare. Reads of previously recovered lost cells are regular
/// reads — they hit the cache if FBF kept them, or go to the spare area.
///
/// Fills `out` (cleared first), reusing its capacity — the simulation
/// engines call this once per damaged stripe, so a caller-owned buffer
/// turns a per-stripe allocation into a steady-state no-op.
void build_request_sequence(const codes::Layout& layout,
                            const RecoveryScheme& scheme,
                            std::vector<ChunkOp>& out);

/// Convenience overload returning a fresh vector.
std::vector<ChunkOp> build_request_sequence(const codes::Layout& layout,
                                            const RecoveryScheme& scheme);

/// Number of Read ops in a sequence (total chunk references).
int count_reads(const std::vector<ChunkOp>& ops);

/// Step value of ops appended for a FaultScheme's Gauss fallback: they do
/// not reference RecoveryScheme::steps.
inline constexpr int kGaussStep = -1;

/// Appends the Gauss-fallback tail of a fault scheme to `ops`: for every
/// involved chain, reads of its non-Gauss members (previously recovered
/// cells read back like any other member), then one WriteSpare per Gauss
/// target. All appended ops carry step == kGaussStep; the SOR engine
/// charges the whole solve's XOR cost at the first of those writes.
void append_gauss_ops(const codes::Layout& layout, const FaultScheme& fs,
                      std::vector<ChunkOp>& ops);

}  // namespace fbf::recovery
