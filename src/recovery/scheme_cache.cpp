#include "recovery/scheme_cache.h"

namespace fbf::recovery {

std::uint64_t SchemeCache::make_key(const PartialStripeError& error,
                                    SchemeKind kind) {
  const auto field = [](int v) {
    return static_cast<std::uint64_t>(static_cast<std::uint16_t>(v));
  };
  return (field(error.col) << 48) | (field(error.first_row) << 32) |
         (field(error.num_chunks) << 16) | field(static_cast<int>(kind));
}

std::shared_ptr<const RecoveryScheme> SchemeCache::get(
    const PartialStripeError& error, SchemeKind kind) {
  const std::uint64_t key = make_key(error, kind);
  const auto it = schemes_.find(key);
  if (it != schemes_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  auto scheme = std::make_shared<const RecoveryScheme>(
      generate_scheme(*layout_, error, kind));
  schemes_.emplace(key, scheme);
  return scheme;
}

}  // namespace fbf::recovery
