#include "recovery/scheme_cache.h"

namespace fbf::recovery {

std::shared_ptr<const RecoveryScheme> SchemeCache::get(
    const PartialStripeError& error, SchemeKind kind) {
  const Key key{error.col, error.first_row, error.num_chunks,
                static_cast<int>(kind)};
  const auto it = schemes_.find(key);
  if (it != schemes_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  auto scheme = std::make_shared<const RecoveryScheme>(
      generate_scheme(*layout_, error, kind));
  schemes_.emplace(key, scheme);
  return scheme;
}

}  // namespace fbf::recovery
