#include "cache/fifo.h"

namespace fbf::cache {

FifoCache::FifoCache(std::size_t capacity)
    : CachePolicy(capacity), slab_(capacity), index_(capacity) {}

bool FifoCache::contains(Key key) const {
  return index_.find(key) != core::kNil;
}

bool FifoCache::handle(Key key, int /*priority*/) {
  if (index_.find(key) != core::kNil) {
    return true;  // FIFO position unchanged by hits
  }
  if (slab_.in_use() >= capacity()) {
    const core::Index victim = queue_.pop_front(slab_);
    const Key victim_key = slab_[victim].key;
    index_.erase(victim_key);
    slab_.release(victim);
    note_eviction(victim_key);
  }
  const core::Index n = slab_.acquire(key);
  queue_.push_back(slab_, n);
  index_.insert(key, n);
  return false;
}


// Batch adapters (policy.h): same per-element semantics as the scalar
// hooks, but the class is final here, so the per-element calls
// devirtualize and the virtual hop is paid once per batch.
std::size_t FifoCache::handle_batch(const Key* keys,
                           const std::uint8_t* priorities, std::size_t n,
                           std::uint64_t* hit_words) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (handle(keys[i], static_cast<int>(priorities[i]))) {
      hit_words[i >> 6] |= std::uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

void FifoCache::handle_install_batch(const Key* keys,
                              const std::uint8_t* priorities,
                              std::size_t n) {
  // No custom install hook: an install is a demand access minus the stats
  // (policy.h), so the batch folds straight through handle().
  for (std::size_t i = 0; i < n; ++i) {
    handle(keys[i], static_cast<int>(priorities[i]));
  }
}

}  // namespace fbf::cache
