#include "cache/fifo.h"

namespace fbf::cache {

FifoCache::FifoCache(std::size_t capacity)
    : CachePolicy(capacity), slab_(capacity), index_(capacity) {}

bool FifoCache::contains(Key key) const {
  return index_.find(key) != core::kNil;
}

bool FifoCache::handle(Key key, int /*priority*/) {
  if (index_.find(key) != core::kNil) {
    return true;  // FIFO position unchanged by hits
  }
  if (slab_.in_use() >= capacity()) {
    const core::Index victim = queue_.pop_front(slab_);
    index_.erase(slab_[victim].key);
    slab_.release(victim);
    note_eviction();
  }
  const core::Index n = slab_.acquire(key);
  queue_.push_back(slab_, n);
  index_.insert(key, n);
  return false;
}

}  // namespace fbf::cache
