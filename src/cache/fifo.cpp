#include "cache/fifo.h"

namespace fbf::cache {

FifoCache::FifoCache(std::size_t capacity) : CachePolicy(capacity) {}

bool FifoCache::contains(Key key) const { return index_.count(key) > 0; }

bool FifoCache::handle(Key key, int /*priority*/) {
  if (index_.count(key) > 0) {
    return true;  // FIFO position unchanged by hits
  }
  if (index_.size() >= capacity()) {
    index_.erase(queue_.front());
    queue_.pop_front();
    note_eviction();
  }
  queue_.push_back(key);
  index_.emplace(key, std::prev(queue_.end()));
  return false;
}

}  // namespace fbf::cache
