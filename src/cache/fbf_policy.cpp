#include "cache/fbf_policy.h"

#include "util/check.h"

namespace fbf::cache {

FbfCache::FbfCache(std::size_t capacity, bool demote_on_hit)
    : CachePolicy(capacity), demote_on_hit_(demote_on_hit) {}

bool FbfCache::contains(Key key) const { return index_.count(key) > 0; }

int FbfCache::queue_of(Key key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second.level;
}

std::size_t FbfCache::queue_size(int level) const {
  FBF_CHECK(level >= 1 && level <= 3, "queue level must be 1..3");
  return queues_[level - 1].size();
}

std::list<Key>& FbfCache::queue(int level) { return queues_[level - 1]; }

void FbfCache::attach(Key key, int level) {
  auto& q = queue(level);
  q.push_back(key);
  index_[key] = Entry{level, std::prev(q.end())};
}

void FbfCache::detach(const Entry& e) { queue(e.level).erase(e.pos); }

bool FbfCache::handle(Key key, int priority) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Cache hit: one expected reference consumed -> demote one level
    // (Algorithm 1's Queue3->Queue2, Queue2->Queue1, Queue1->its MRU end).
    const Entry e = it->second;
    detach(e);
    const int next_level =
        demote_on_hit_ ? (e.level > 1 ? e.level - 1 : 1) : e.level;
    attach(key, next_level);
    return true;
  }

  if (index_.size() >= capacity()) {
    // Replacement policy: lowest-priority queues first.
    for (int level = 1; level <= 3; ++level) {
      auto& q = queue(level);
      if (!q.empty()) {
        const Key victim = q.front();
        q.pop_front();
        index_.erase(victim);
        note_eviction();
        break;
      }
    }
  }
  attach(key, priority);
  return false;
}

}  // namespace fbf::cache
