#include "cache/fbf_policy.h"

#include "util/check.h"

namespace fbf::cache {

FbfCache::FbfCache(std::size_t capacity, bool demote_on_hit)
    : CachePolicy(capacity),
      demote_on_hit_(demote_on_hit),
      slab_(capacity),
      index_(capacity) {}

bool FbfCache::contains(Key key) const {
  return index_.find(key) != core::kNil;
}

int FbfCache::queue_of(Key key) const {
  const core::Index n = index_.find(key);
  return n == core::kNil ? 0 : static_cast<int>(slab_[n].data.level);
}

std::size_t FbfCache::queue_size(int level) const {
  FBF_CHECK(level >= 1 && level <= 3, "queue level must be 1..3");
  return queues_[level - 1].size();
}

bool FbfCache::handle(Key key, int priority) {
  const core::Index n = index_.find(key);
  if (n != core::kNil) {
    // Cache hit: one expected reference consumed -> demote one level
    // (Algorithm 1's Queue3->Queue2, Queue2->Queue1, Queue1->its MRU end).
    const int level = static_cast<int>(slab_[n].data.level);
    const int next_level =
        demote_on_hit_ ? (level > 1 ? level - 1 : 1) : level;
    queue(level).erase(slab_, n);
    slab_[n].data.level = static_cast<std::uint8_t>(next_level);
    queue(next_level).push_back(slab_, n);
    return true;
  }

  if (slab_.in_use() >= capacity()) {
    // Replacement policy: lowest-priority queues first.
    for (int level = 1; level <= 3; ++level) {
      if (!queue(level).empty()) {
        const core::Index victim = queue(level).pop_front(slab_);
        index_.erase(slab_[victim].key);
        slab_.release(victim);
        note_eviction();
        break;
      }
    }
  }
  const core::Index fresh = slab_.acquire(key);
  slab_[fresh].data.level = static_cast<std::uint8_t>(priority);
  queue(priority).push_back(slab_, fresh);
  index_.insert(key, fresh);
  return false;
}

}  // namespace fbf::cache
