#include "cache/fbf_policy.h"

#include "util/check.h"

namespace fbf::cache {

FbfCache::FbfCache(std::size_t capacity, bool demote_on_hit)
    : CachePolicy(capacity),
      demote_on_hit_(demote_on_hit),
      slab_(capacity),
      index_(capacity) {}

bool FbfCache::contains(Key key) const {
  return index_.find(key) != core::kNil;
}

int FbfCache::queue_of(Key key) const {
  const core::Index n = index_.find(key);
  return n == core::kNil ? 0 : static_cast<int>(slab_[n].data.level);
}

std::size_t FbfCache::queue_size(int level) const {
  FBF_CHECK(level >= 1 && level <= 3, "queue level must be 1..3");
  return queues_[level - 1].size();
}

bool FbfCache::handle(Key key, int priority) {
  return handle_impl(key, priority);
}

// Batch adapters (policy.h): same per-element semantics as the scalar
// hook. handle_impl is header-inline, so each loop iteration is a local
// probe-and-relink rather than a function call per element.
std::size_t FbfCache::handle_batch(const Key* keys,
                           const std::uint8_t* priorities, std::size_t n,
                           std::uint64_t* hit_words) {
  for (std::size_t i = 0; i < n; ++i) {
    index_.prefetch(keys[i]);
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (handle_impl(keys[i], static_cast<int>(priorities[i]))) {
      hit_words[i >> 6] |= std::uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

void FbfCache::handle_install_batch(const Key* keys,
                              const std::uint8_t* priorities,
                              std::size_t n) {
  // No custom install hook: an install is a demand access minus the stats
  // (policy.h), so the batch folds straight through the same step.
  for (std::size_t i = 0; i < n; ++i) {
    index_.prefetch(keys[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    handle_impl(keys[i], static_cast<int>(priorities[i]));
  }
}

}  // namespace fbf::cache
