// Favorable Block First replacement (paper §III, Algorithm 1).
//
// Three LRU queues hold chunks by remaining usefulness to the ongoing
// partial-stripe reconstruction: Queue3 for chunks shared by >= 3 selected
// parity chains, Queue2 for two, Queue1 for one. On a hit the chunk has
// consumed one of its expected references, so it *demotes* one level
// (Queue3 -> Queue2 -> Queue1; Queue1 hits just refresh recency).
// Replacement drains Queue1 first, then Queue2, and touches Queue3 only
// when nothing else remains — favorable blocks stay resident even when
// they are the least recently used chunks overall.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/policy.h"

namespace fbf::cache {

class FbfCache final : public CachePolicy {
 public:
  /// `demote_on_hit=false` gives the ablation variant where hits refresh
  /// recency inside the chunk's own queue instead of demoting.
  FbfCache(std::size_t capacity, bool demote_on_hit = true);

  bool contains(Key key) const override;
  std::size_t size() const override { return index_.size(); }
  const char* name() const override {
    return demote_on_hit_ ? "FBF" : "FBF-nodemote";
  }

  /// Current queue level of a resident key (test hook); 0 when absent.
  int queue_of(Key key) const;
  std::size_t queue_size(int level) const;

 protected:
  bool handle(Key key, int priority) override;

 private:
  struct Entry {
    int level = 1;  // 1..3
    std::list<Key>::iterator pos;
  };

  std::list<Key>& queue(int level);
  void attach(Key key, int level);
  void detach(const Entry& e);

  bool demote_on_hit_;
  std::list<Key> queues_[3];  // index level-1; front = LRU
  std::unordered_map<Key, Entry> index_;
};

}  // namespace fbf::cache
