// Favorable Block First replacement (paper §III, Algorithm 1).
//
// Three LRU queues hold chunks by remaining usefulness to the ongoing
// partial-stripe reconstruction: Queue3 for chunks shared by >= 3 selected
// parity chains, Queue2 for two, Queue1 for one. On a hit the chunk has
// consumed one of its expected references, so it *demotes* one level
// (Queue3 -> Queue2 -> Queue1; Queue1 hits just refresh recency).
// Replacement drains Queue1 first, then Queue2, and touches Queue3 only
// when nothing else remains — favorable blocks stay resident even when
// they are the least recently used chunks overall.
//
// Flat core layout: one node slab + one key index shared by the three
// intrusive queues; a hit relinks the node into the next queue in place —
// zero per-operation allocation. This is the paper's own Table IV claim
// (FBF bookkeeping overhead is negligible) made structural.
#pragma once

#include "cache/core/hash_index.h"
#include "cache/core/intrusive_list.h"
#include "cache/core/slab.h"
#include "cache/policy.h"

namespace fbf::cache {

class FbfCache final : public CachePolicy {
 public:
  /// `demote_on_hit=false` gives the ablation variant where hits refresh
  /// recency inside the chunk's own queue instead of demoting.
  FbfCache(std::size_t capacity, bool demote_on_hit = true);

  bool contains(Key key) const override;
  std::size_t size() const override { return slab_.in_use(); }
  const char* name() const override {
    return demote_on_hit_ ? "FBF" : "FBF-nodemote";
  }

  /// Current queue level of a resident key (test hook); 0 when absent.
  int queue_of(Key key) const;
  std::size_t queue_size(int level) const;

 protected:
  bool handle(Key key, int priority) override;
  std::size_t handle_batch(const Key* keys, const std::uint8_t* priorities,
                           std::size_t n, std::uint64_t* hit_words) override;
  void handle_install_batch(const Key* keys, const std::uint8_t* priorities,
                            std::size_t n) override;

 private:
  struct Level {
    std::uint8_t level = 1;  // 1..3
  };

  core::IntrusiveList& queue(int level) { return queues_[level - 1]; }

  /// Algorithm 1's per-access step, shared by the scalar hook and the
  /// batch adapters. Defined in-class so the batch loops — one call per
  /// touched chunk, the hottest edge in the DOR storm — inline it instead
  /// of paying a cross-function call per element.
  bool handle_impl(Key key, int priority) {
    const core::Index n = index_.find(key);
    if (n != core::kNil) {
      // Cache hit: one expected reference consumed -> demote one level
      // (Algorithm 1's Queue3->Queue2, Queue2->Queue1, Queue1->its MRU
      // end).
      const int level = static_cast<int>(slab_[n].data.level);
      const int next_level =
          demote_on_hit_ ? (level > 1 ? level - 1 : 1) : level;
      queue(level).erase(slab_, n);
      slab_[n].data.level = static_cast<std::uint8_t>(next_level);
      queue(next_level).push_back(slab_, n);
      return true;
    }

    if (slab_.in_use() >= capacity()) {
      // Replacement policy: lowest-priority queues first.
      for (int level = 1; level <= 3; ++level) {
        if (!queue(level).empty()) {
          const core::Index victim = queue(level).pop_front(slab_);
          const Key victim_key = slab_[victim].key;
          index_.erase(victim_key);
          slab_.release(victim);
          note_eviction(victim_key);
          break;
        }
      }
    }
    const core::Index fresh = slab_.acquire(key);
    slab_[fresh].data.level = static_cast<std::uint8_t>(priority);
    queue(priority).push_back(slab_, fresh);
    index_.insert(key, fresh);
    return false;
  }

  bool demote_on_hit_;
  core::NodeSlab<Level> slab_;
  core::KeyIndexTable index_;
  core::IntrusiveList queues_[3];  // index level-1; front = LRU
};

}  // namespace fbf::cache
