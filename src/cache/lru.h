// Least-recently-used replacement.
//
// Flat core layout: a fixed node slab + one intrusive recency list + an
// open-addressing key index — zero per-operation allocation.
#pragma once

#include "cache/core/hash_index.h"
#include "cache/core/intrusive_list.h"
#include "cache/core/slab.h"
#include "cache/policy.h"

namespace fbf::cache {

class LruCache final : public CachePolicy {
 public:
  explicit LruCache(std::size_t capacity);

  bool contains(Key key) const override;
  std::size_t size() const override { return slab_.in_use(); }
  const char* name() const override { return "LRU"; }

  /// The key next in line for eviction (test hook); size() must be > 0.
  Key lru_key() const;

 protected:
  bool handle(Key key, int priority) override;
  std::size_t handle_batch(const Key* keys, const std::uint8_t* priorities,
                           std::size_t n, std::uint64_t* hit_words) override;
  void handle_install_batch(const Key* keys, const std::uint8_t* priorities,
                            std::size_t n) override;

 private:
  core::NodeSlab<core::NoData> slab_;
  core::KeyIndexTable index_;
  core::IntrusiveList order_;  // front = LRU, back = MRU
};

}  // namespace fbf::cache
