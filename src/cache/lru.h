// Least-recently-used replacement.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/policy.h"

namespace fbf::cache {

class LruCache final : public CachePolicy {
 public:
  explicit LruCache(std::size_t capacity);

  bool contains(Key key) const override;
  std::size_t size() const override { return index_.size(); }
  const char* name() const override { return "LRU"; }

  /// The key next in line for eviction (test hook); size() must be > 0.
  Key lru_key() const;

 protected:
  bool handle(Key key, int priority) override;

 private:
  std::list<Key> order_;  // front = LRU, back = MRU
  std::unordered_map<Key, std::list<Key>::iterator> index_;
};

}  // namespace fbf::cache
