// Buffer-cache replacement policy interface.
//
// Policies track *which* chunks are resident, not their bytes — the
// simulator charges timing, the codec owns data. A single entry point,
// request(), models the paper's Algorithm 1 shape: lookup; on hit update
// recency structures; on miss admit the chunk (evicting per policy).
//
// `priority` is the FBF priority (1..3) from the recovery scheme's
// priority dictionary; classic policies ignore it.
//
// Write-back extension: write() is a write-allocate demand access that
// additionally marks the line *dirty* (raidxor's DIRTY state) — the cached
// bytes are newer than the disk copy and must eventually be written back.
// The dirty layer lives entirely in this base class (a core::DirtyTracker
// slaved to residency), so the nine replacement ports only decide *which*
// line to evict; an evicted dirty line moves to a pending write-back queue
// the simulator drains (raidxor's WRITEBACK state). Policies that never
// see a write() pay nothing: the tracker is allocated lazily on the first
// write, which keeps recovery-only caches byte-identical to the pre-write
// build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/core/dirty_tracker.h"

namespace fbf::cache {

using Key = std::uint64_t;

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  std::uint64_t accesses() const { return hits + misses; }
  double hit_ratio() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(accesses());
  }
};

/// Write-path accounting, kept apart from CacheStats so read hit-ratio
/// curves (the paper's metric) never mix in write traffic.
struct WriteStats {
  std::uint64_t write_hits = 0;      ///< write() found the line resident
  std::uint64_t write_misses = 0;    ///< write() had to admit the line
  std::uint64_t dirty_installed = 0; ///< clean->dirty transitions
  std::uint64_t evicted_dirty = 0;   ///< dirty lines pushed out by eviction

  std::uint64_t writes() const { return write_hits + write_misses; }
};

class CachePolicy {
 public:
  explicit CachePolicy(std::size_t capacity) : capacity_(capacity) {}
  virtual ~CachePolicy() = default;

  CachePolicy(const CachePolicy&) = delete;
  CachePolicy& operator=(const CachePolicy&) = delete;

  /// Returns true on hit. On miss the key is admitted (possibly evicting
  /// another). Zero-capacity caches miss everything and store nothing.
  bool request(Key key, int priority = 1);

  /// Places a chunk in the cache without counting a hit or miss — used for
  /// freshly recovered chunks, which enter the buffer as a side effect of
  /// reconstruction rather than through a lookup. Evictions still count.
  ///
  /// Installs carry no reuse evidence, so adaptive policies must not treat
  /// them as demand accesses: ARC keeps its target `p` and never counts a
  /// ghost hit, 2Q never ghost-promotes into the protected queue, and an
  /// already-resident key is left untouched. A key is never simultaneously
  /// resident and on a ghost list (installing a ghosted key removes the
  /// ghost entry without adapting).
  void install(Key key, int priority = 1);

  /// Batched request: exactly equivalent to calling request(keys[i],
  /// priorities[i]) for i in [0, n) in order — same hits, misses,
  /// evictions, and final state (the differential fuzz pins this for every
  /// policy). Bit i of `hit_words` (ceil(n/64) caller-provided words,
  /// zeroed here) is set on hit; returns the number of hits. One virtual
  /// dispatch covers the whole batch: the simulator hot loops hand a
  /// chain's members over in one call instead of paying a virtual hop and
  /// a stats update per chunk.
  std::size_t touch_batch(const Key* keys, const std::uint8_t* priorities,
                          std::size_t n, std::uint64_t* hit_words);

  /// Batched install: exactly equivalent to install(keys[i], priorities[i])
  /// for i in [0, n) in order. No hit/miss accounting, evictions still
  /// count (see install()).
  void install_batch(const Key* keys, const std::uint8_t* priorities,
                     std::size_t n);

  /// Write-allocate demand access: like request() (same replacement-state
  /// updates, evictions per policy), but accounted under WriteStats and
  /// the line is marked dirty with `priority` stamped on it (latest write
  /// wins). Returns true when the line was already resident. A later
  /// request()/install() of a dirty key leaves the dirty bit untouched.
  /// Zero-capacity caches count a write miss and store nothing.
  bool write(Key key, int priority = 1);

  /// True iff `key` is resident with unwritten bytes.
  bool is_dirty(Key key) const {
    return dirty_ != nullptr && dirty_->contains(key);
  }
  std::size_t dirty_count() const {
    return dirty_ == nullptr ? 0 : dirty_->size();
  }

  /// Moves the dirty lines evicted since the last call into `out`
  /// (appended in eviction order). The caller owns their write-back — or
  /// their funeral, if the chunk is gone.
  void take_evicted_dirty(std::vector<core::DirtyLine>& out);

  /// Drains resident dirty lines into `out` in mark order and cleans
  /// them (they stay resident). With `retain_min_priority` > 0, lines
  /// stamped at or above it keep their dirty bit — the FBF-aware
  /// retention hook: favorable blocks earn longer dirty residency.
  void flush_dirty(std::vector<core::DirtyLine>& out,
                   int retain_min_priority = 0);

  /// Drops the dirty bit without a write-back (the backing chunk was
  /// lost; there is nowhere meaningful to flush). Returns true when the
  /// line was dirty. Pending evicted-dirty lines must be taken *before*
  /// invalidating, or a stale write-back survives in the queue.
  bool invalidate_dirty(Key key);

  /// Every resident dirty line in mark order (test/introspection hook).
  std::vector<core::DirtyLine> dirty_lines() const {
    std::vector<core::DirtyLine> out;
    if (dirty_ != nullptr) {
      dirty_->snapshot(out);
    }
    return out;
  }

  virtual bool contains(Key key) const = 0;
  virtual std::size_t size() const = 0;
  virtual const char* name() const = 0;

  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }
  const WriteStats& write_stats() const { return write_stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

 protected:
  /// Policy-specific handling; returns hit/miss. Must keep size() <=
  /// capacity() and call note_eviction(victim_key) per evicted key — the
  /// key is how the base class migrates a victim's dirty bit to the
  /// pending write-back queue, so dropping it loses data.
  virtual bool handle(Key key, int priority) = 0;

  /// Policy-specific install. Contract (see install() above): admit the
  /// key as if cold — no reuse evidence — and leave an already-resident
  /// key's replacement state untouched. The default forwards to handle(),
  /// which is correct only for policies whose demand path carries no
  /// adaptive or frequency state a non-demand admission would pollute;
  /// ARC (target p, ghost hits), 2Q (ghost promotion), LFU/LRFU/LRU-2
  /// (frequency/history updates on re-access) all override. Evictions
  /// triggered by an install still go through note_eviction(victim_key),
  /// so installs can push dirty victims to the write-back queue too.
  virtual void handle_install(Key key, int priority) { handle(key, priority); }

  /// Batch adapters. The defaults loop over the virtual handle hooks —
  /// semantically final (batch ≡ sequential is the contract, not a policy
  /// choice); every port overrides them with a loop over its own concrete
  /// handle so the per-element calls devirtualize and inline. Returns the
  /// hit count and sets hit bits (the caller zeroes `hit_words`).
  virtual std::size_t handle_batch(const Key* keys,
                                   const std::uint8_t* priorities,
                                   std::size_t n, std::uint64_t* hit_words) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (handle(keys[i], priorities[i])) {
        hit_words[i >> 6] |= std::uint64_t{1} << (i & 63);
        ++hits;
      }
    }
    return hits;
  }
  virtual void handle_install_batch(const Key* keys,
                                    const std::uint8_t* priorities,
                                    std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      handle_install(keys[i], priorities[i]);
    }
  }

  /// Every eviction site calls this with the victim's key: counts the
  /// eviction and, when the victim was dirty, moves its line to the
  /// pending write-back queue (take_evicted_dirty drains it).
  void note_eviction(Key key) {
    ++stats_.evictions;
    if (dirty_ != nullptr) {
      const std::uint8_t priority = dirty_->clear(key);
      if (priority != 0) {
        evicted_dirty_.push_back(core::DirtyLine{key, priority});
        ++write_stats_.evicted_dirty;
      }
    }
  }

 private:
  std::size_t capacity_;
  CacheStats stats_;
  WriteStats write_stats_;
  /// Lazily allocated on the first write(): read-only users (the recovery
  /// engines' worker caches) never pay the tracker's memory or branches.
  std::unique_ptr<core::DirtyTracker> dirty_;
  std::vector<core::DirtyLine> evicted_dirty_;
};

/// Replacement policies evaluated by the paper (FIFO/LRU/LFU/ARC/FBF) plus
/// extensions (LRU-2, 2Q, FBF without hit-demotion for the ablation).
enum class PolicyId {
  Fifo,
  Lru,
  Lfu,
  Arc,
  Lru2,
  TwoQ,
  Lrfu,
  Fbf,
  FbfNoDemote,
};

inline constexpr PolicyId kPaperPolicies[] = {
    PolicyId::Fifo, PolicyId::Lru, PolicyId::Lfu, PolicyId::Arc,
    PolicyId::Fbf};

const char* to_string(PolicyId id);
PolicyId policy_from_string(const std::string& name);

std::unique_ptr<CachePolicy> make_policy(PolicyId id, std::size_t capacity);

}  // namespace fbf::cache
