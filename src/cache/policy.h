// Buffer-cache replacement policy interface.
//
// Policies track *which* chunks are resident, not their bytes — the
// simulator charges timing, the codec owns data. A single entry point,
// request(), models the paper's Algorithm 1 shape: lookup; on hit update
// recency structures; on miss admit the chunk (evicting per policy).
//
// `priority` is the FBF priority (1..3) from the recovery scheme's
// priority dictionary; classic policies ignore it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace fbf::cache {

using Key = std::uint64_t;

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  std::uint64_t accesses() const { return hits + misses; }
  double hit_ratio() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(accesses());
  }
};

class CachePolicy {
 public:
  explicit CachePolicy(std::size_t capacity) : capacity_(capacity) {}
  virtual ~CachePolicy() = default;

  CachePolicy(const CachePolicy&) = delete;
  CachePolicy& operator=(const CachePolicy&) = delete;

  /// Returns true on hit. On miss the key is admitted (possibly evicting
  /// another). Zero-capacity caches miss everything and store nothing.
  bool request(Key key, int priority = 1);

  /// Places a chunk in the cache without counting a hit or miss — used for
  /// freshly recovered chunks, which enter the buffer as a side effect of
  /// reconstruction rather than through a lookup. Evictions still count.
  ///
  /// Installs carry no reuse evidence, so adaptive policies must not treat
  /// them as demand accesses: ARC keeps its target `p` and never counts a
  /// ghost hit, 2Q never ghost-promotes into the protected queue, and an
  /// already-resident key is left untouched. A key is never simultaneously
  /// resident and on a ghost list (installing a ghosted key removes the
  /// ghost entry without adapting).
  void install(Key key, int priority = 1);

  /// Batched request: exactly equivalent to calling request(keys[i],
  /// priorities[i]) for i in [0, n) in order — same hits, misses,
  /// evictions, and final state (the differential fuzz pins this for every
  /// policy). Bit i of `hit_words` (ceil(n/64) caller-provided words,
  /// zeroed here) is set on hit; returns the number of hits. One virtual
  /// dispatch covers the whole batch: the simulator hot loops hand a
  /// chain's members over in one call instead of paying a virtual hop and
  /// a stats update per chunk.
  std::size_t touch_batch(const Key* keys, const std::uint8_t* priorities,
                          std::size_t n, std::uint64_t* hit_words);

  /// Batched install: exactly equivalent to install(keys[i], priorities[i])
  /// for i in [0, n) in order. No hit/miss accounting, evictions still
  /// count (see install()).
  void install_batch(const Key* keys, const std::uint8_t* priorities,
                     std::size_t n);

  virtual bool contains(Key key) const = 0;
  virtual std::size_t size() const = 0;
  virtual const char* name() const = 0;

  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

 protected:
  /// Policy-specific handling; returns hit/miss. Must keep size() <=
  /// capacity() and call note_eviction() per evicted key.
  virtual bool handle(Key key, int priority) = 0;

  /// Policy-specific install. The default treats it as a demand access;
  /// policies with adaptive state (ARC, 2Q) override to admit without
  /// adapting (see install()).
  virtual void handle_install(Key key, int priority) { handle(key, priority); }

  /// Batch adapters. The defaults loop over the virtual handle hooks —
  /// semantically final (batch ≡ sequential is the contract, not a policy
  /// choice); every port overrides them with a loop over its own concrete
  /// handle so the per-element calls devirtualize and inline. Returns the
  /// hit count and sets hit bits (the caller zeroes `hit_words`).
  virtual std::size_t handle_batch(const Key* keys,
                                   const std::uint8_t* priorities,
                                   std::size_t n, std::uint64_t* hit_words) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (handle(keys[i], priorities[i])) {
        hit_words[i >> 6] |= std::uint64_t{1} << (i & 63);
        ++hits;
      }
    }
    return hits;
  }
  virtual void handle_install_batch(const Key* keys,
                                    const std::uint8_t* priorities,
                                    std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      handle_install(keys[i], priorities[i]);
    }
  }

  void note_eviction() { ++stats_.evictions; }

 private:
  std::size_t capacity_;
  CacheStats stats_;
};

/// Replacement policies evaluated by the paper (FIFO/LRU/LFU/ARC/FBF) plus
/// extensions (LRU-2, 2Q, FBF without hit-demotion for the ablation).
enum class PolicyId {
  Fifo,
  Lru,
  Lfu,
  Arc,
  Lru2,
  TwoQ,
  Lrfu,
  Fbf,
  FbfNoDemote,
};

inline constexpr PolicyId kPaperPolicies[] = {
    PolicyId::Fifo, PolicyId::Lru, PolicyId::Lfu, PolicyId::Arc,
    PolicyId::Fbf};

const char* to_string(PolicyId id);
PolicyId policy_from_string(const std::string& name);

std::unique_ptr<CachePolicy> make_policy(PolicyId id, std::size_t capacity);

}  // namespace fbf::cache
