// Belady's MIN: the clairvoyant-optimal replacement baseline.
//
// Given the full future request stream — which partial-stripe recovery
// has, since schemes are deterministic — MIN evicts the block whose next
// use is farthest away (with bypass: an incoming block may itself be the
// victim). No online policy can beat it on hits, so it upper-bounds what
// any reconstruction-aware policy, FBF included, could achieve
// (bench_ablation_optimality).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/policy.h"

namespace fbf::cache {

/// Hit/miss counts of MIN on `requests` with the given capacity.
/// Evictions are counted when a resident block is displaced.
CacheStats belady_min(const std::vector<Key>& requests, std::size_t capacity);

/// Convenience: MIN hit ratio for a stream.
double belady_hit_ratio(const std::vector<Key>& requests,
                        std::size_t capacity);

}  // namespace fbf::cache
