// Least-frequently-used replacement with LRU tie-breaking inside each
// frequency class (the classic O(1) frequency-list construction).
//
// Flat core layout: key nodes live in one slab and frequency classes in a
// second slab of bucket nodes, kept as an intrusive list sorted by
// ascending frequency. Each bucket embeds the intrusive member list of its
// keys (links threaded through the key slab), so a frequency bump moves a
// node to the adjacent bucket — allocating a bucket slot only from the
// fixed bucket slab (at most capacity non-empty classes exist, +1 during a
// bump). Zero per-operation heap allocation.
#pragma once

#include "cache/core/hash_index.h"
#include "cache/core/intrusive_list.h"
#include "cache/core/slab.h"
#include "cache/policy.h"

namespace fbf::cache {

class LfuCache final : public CachePolicy {
 public:
  explicit LfuCache(std::size_t capacity);

  bool contains(Key key) const override;
  std::size_t size() const override { return nodes_.in_use(); }
  const char* name() const override { return "LFU"; }

  /// Access count of a resident key (test hook); 0 when absent.
  std::uint64_t frequency(Key key) const;

 protected:
  bool handle(Key key, int priority) override;
  std::size_t handle_batch(const Key* keys, const std::uint8_t* priorities,
                           std::size_t n, std::uint64_t* hit_words) override;
  void handle_install_batch(const Key* keys, const std::uint8_t* priorities,
                            std::size_t n) override;

 private:
  struct KeyData {
    core::Index bucket = core::kNil;
  };
  struct BucketData {
    std::uint64_t freq = 1;
    core::IntrusiveList members;  // links live in nodes_; front = LRU
  };

  void bump(core::Index n);
  /// Moves `n` into the bucket for `freq`, placed after `after` in the
  /// frequency order (or at the front when `after` is kNil), creating the
  /// bucket if that exact frequency has no class yet.
  void place(core::Index n, std::uint64_t freq, core::Index after);
  void release_if_empty(core::Index bucket);

  core::NodeSlab<KeyData> nodes_;
  core::NodeSlab<BucketData> buckets_;
  core::KeyIndexTable index_;
  core::IntrusiveList by_freq_;  // buckets ascending by freq
};

}  // namespace fbf::cache
