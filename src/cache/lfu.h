// Least-frequently-used replacement with LRU tie-breaking inside each
// frequency class (the classic O(1) frequency-list construction).
#pragma once

#include <list>
#include <map>
#include <unordered_map>

#include "cache/policy.h"

namespace fbf::cache {

class LfuCache final : public CachePolicy {
 public:
  explicit LfuCache(std::size_t capacity);

  bool contains(Key key) const override;
  std::size_t size() const override { return index_.size(); }
  const char* name() const override { return "LFU"; }

  /// Access count of a resident key (test hook); 0 when absent.
  std::uint64_t frequency(Key key) const;

 protected:
  bool handle(Key key, int priority) override;

 private:
  struct Entry {
    std::uint64_t freq = 1;
    std::list<Key>::iterator pos;
  };

  void bump(Key key, Entry& e);

  // freq -> keys in LRU order (front = least recent at that freq).
  std::map<std::uint64_t, std::list<Key>> by_freq_;
  std::unordered_map<Key, Entry> index_;
};

}  // namespace fbf::cache
