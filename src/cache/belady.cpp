#include "cache/belady.h"

#include <limits>
#include <set>
#include <unordered_map>

namespace fbf::cache {

CacheStats belady_min(const std::vector<Key>& requests,
                      std::size_t capacity) {
  CacheStats stats;
  if (capacity == 0) {
    stats.misses = requests.size();
    return stats;
  }

  // next_use[i] = index of the next request of requests[i], or infinity.
  constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> next_use(requests.size(), kNever);
  std::unordered_map<Key, std::size_t> last_seen;
  for (std::size_t i = requests.size(); i-- > 0;) {
    const auto it = last_seen.find(requests[i]);
    next_use[i] = it == last_seen.end() ? kNever : it->second;
    last_seen[requests[i]] = i;
  }

  // Resident set ordered by next use, farthest last.
  std::set<std::pair<std::size_t, Key>> by_next_use;
  std::unordered_map<Key, std::size_t> resident;  // key -> its next use
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Key key = requests[i];
    const auto it = resident.find(key);
    if (it != resident.end()) {
      ++stats.hits;
      by_next_use.erase({it->second, key});
      it->second = next_use[i];
      by_next_use.insert({next_use[i], key});
      continue;
    }
    ++stats.misses;
    if (next_use[i] == kNever) {
      continue;  // bypass: never used again, caching it cannot help
    }
    if (resident.size() >= capacity) {
      // Evict the farthest-future block — possibly bypassing the
      // incoming one if everything resident is needed sooner.
      const auto farthest = std::prev(by_next_use.end());
      if (farthest->first <= next_use[i]) {
        continue;  // bypass the incoming block
      }
      resident.erase(farthest->second);
      by_next_use.erase(farthest);
      ++stats.evictions;
    }
    resident.emplace(key, next_use[i]);
    by_next_use.insert({next_use[i], key});
  }
  return stats;
}

double belady_hit_ratio(const std::vector<Key>& requests,
                        std::size_t capacity) {
  return belady_min(requests, capacity).hit_ratio();
}

}  // namespace fbf::cache
