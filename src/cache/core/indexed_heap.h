// Fixed-capacity binary min-heap over slab indices with handle tracking.
//
// The heap array is reserved once at construction and a position map
// (node index -> heap slot) makes arbitrary removal and rank updates
// O(log n) — the operations LRU-2 needs for its (penultimate, last)
// eviction order without std::set's per-node allocation. `Less` compares
// two slab indices; it typically holds a pointer to the slab whose node
// payloads carry the rank.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "cache/core/types.h"
#include "util/check.h"

namespace fbf::cache::core {

template <typename Less>
class IndexedMinHeap {
 public:
  /// `capacity` bounds both the node index space and the entry count.
  IndexedMinHeap(std::size_t capacity, Less less)
      : pos_(capacity, kNil), less_(std::move(less)) {
    heap_.reserve(capacity);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  bool contains(Index node) const { return pos_[node] != kNil; }

  /// Minimum-ranked node; the heap must be non-empty.
  Index top() const {
    FBF_CHECK(!heap_.empty(), "IndexedMinHeap top on empty heap");
    return heap_.front();
  }

  void push(Index node) {
    FBF_CHECK(pos_[node] == kNil, "IndexedMinHeap push of a queued node");
    heap_.push_back(node);
    pos_[node] = static_cast<Index>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
  }

  void pop() { remove(top()); }

  /// Removes an arbitrary queued node.
  void remove(Index node) {
    const Index slot = pos_[node];
    FBF_CHECK(slot != kNil, "IndexedMinHeap remove of an absent node");
    const std::size_t last = heap_.size() - 1;
    pos_[node] = kNil;
    if (slot != last) {
      heap_[slot] = heap_[last];
      pos_[heap_[slot]] = slot;
      heap_.pop_back();
      if (!sift_up(slot)) {
        sift_down(slot);
      }
    } else {
      heap_.pop_back();
    }
  }

  /// Restores heap order after the caller changed `node`'s rank in place.
  void update(Index node) {
    const Index slot = pos_[node];
    FBF_CHECK(slot != kNil, "IndexedMinHeap update of an absent node");
    if (!sift_up(slot)) {
      sift_down(slot);
    }
  }

  void clear() {
    for (Index n : heap_) {
      pos_[n] = kNil;
    }
    heap_.clear();
  }

 private:
  bool sift_up(std::size_t slot) {
    bool moved = false;
    while (slot > 0) {
      const std::size_t parent = (slot - 1) / 2;
      if (!less_(heap_[slot], heap_[parent])) {
        break;
      }
      swap_slots(slot, parent);
      slot = parent;
      moved = true;
    }
    return moved;
  }

  void sift_down(std::size_t slot) {
    while (true) {
      const std::size_t l = 2 * slot + 1;
      const std::size_t r = 2 * slot + 2;
      std::size_t best = slot;
      if (l < heap_.size() && less_(heap_[l], heap_[best])) {
        best = l;
      }
      if (r < heap_.size() && less_(heap_[r], heap_[best])) {
        best = r;
      }
      if (best == slot) {
        return;
      }
      swap_slots(slot, best);
      slot = best;
    }
  }

  void swap_slots(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a]] = static_cast<Index>(a);
    pos_[heap_[b]] = static_cast<Index>(b);
  }

  std::vector<Index> heap_;
  std::vector<Index> pos_;  ///< node -> heap slot, kNil when absent
  Less less_;
};

}  // namespace fbf::cache::core
