// Index-based intrusive doubly-linked list over a NodeSlab.
//
// The list owns only head/tail/count; the prev/next links live inside the
// slab's nodes, so several lists can share one slab (ARC's four lists, 2Q's
// three queues, FBF's priority queues) as long as each node is in at most
// one list at a time. All operations are O(1) and allocation-free.
//
// Methods take the slab as a parameter rather than storing a reference so
// the list stays a trivially movable POD and the borrow is explicit at
// every call site.
#pragma once

#include <cstddef>

#include "cache/core/types.h"
#include "util/check.h"

namespace fbf::cache::core {

class IntrusiveList {
 public:
  bool empty() const { return head_ == kNil; }
  std::size_t size() const { return count_; }
  Index front() const { return head_; }
  Index back() const { return tail_; }

  /// Drops every link in O(1); the nodes themselves are untouched (the
  /// caller releases them to the slab or relinks them elsewhere).
  void clear() {
    head_ = tail_ = kNil;
    count_ = 0;
  }

  template <typename Slab>
  void push_back(Slab& slab, Index i) {
    slab[i].prev = tail_;
    slab[i].next = kNil;
    if (tail_ != kNil) {
      slab[tail_].next = i;
    } else {
      head_ = i;
    }
    tail_ = i;
    ++count_;
  }

  template <typename Slab>
  void push_front(Slab& slab, Index i) {
    slab[i].prev = kNil;
    slab[i].next = head_;
    if (head_ != kNil) {
      slab[head_].prev = i;
    } else {
      tail_ = i;
    }
    head_ = i;
    ++count_;
  }

  /// Links `i` immediately after `pos` (which must be in this list).
  template <typename Slab>
  void insert_after(Slab& slab, Index pos, Index i) {
    const Index nxt = slab[pos].next;
    slab[i].prev = pos;
    slab[i].next = nxt;
    slab[pos].next = i;
    if (nxt != kNil) {
      slab[nxt].prev = i;
    } else {
      tail_ = i;
    }
    ++count_;
  }

  /// Unlinks `i` (which must be in this list); the node is not released.
  template <typename Slab>
  void erase(Slab& slab, Index i) {
    FBF_CHECK(count_ > 0, "IntrusiveList erase from an empty list");
    const Index p = slab[i].prev;
    const Index n = slab[i].next;
    if (p != kNil) {
      slab[p].next = n;
    } else {
      head_ = n;
    }
    if (n != kNil) {
      slab[n].prev = p;
    } else {
      tail_ = p;
    }
    slab[i].prev = slab[i].next = kNil;
    --count_;
  }

  template <typename Slab>
  Index pop_front(Slab& slab) {
    FBF_CHECK(head_ != kNil, "IntrusiveList pop_front on an empty list");
    const Index i = head_;
    erase(slab, i);
    return i;
  }

  /// LRU touch: unlink and re-append in one call.
  template <typename Slab>
  void move_to_back(Slab& slab, Index i) {
    if (tail_ == i) {
      return;
    }
    erase(slab, i);
    push_back(slab, i);
  }

 private:
  Index head_ = kNil;
  Index tail_ = kNil;
  std::size_t count_ = 0;
};

}  // namespace fbf::cache::core
