// Fixed-capacity node slab: one contiguous array acquired at construction,
// recycled through an embedded free list. acquire()/release() never touch
// the heap, so a policy built on a slab does zero per-operation allocation.
//
// Nodes carry the cache key, the prev/next links used by IntrusiveList
// (each node sits in at most one list at a time in every policy), and a
// policy-specific payload. The free list threads through `next`.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "cache/core/types.h"
#include "util/check.h"

namespace fbf::cache::core {

template <typename Payload>
class NodeSlab {
 public:
  struct Node {
    Key key = 0;
    Index prev = kNil;
    Index next = kNil;
    Payload data{};
  };

  explicit NodeSlab(std::size_t capacity) : nodes_(capacity) { reset_free_list(); }

  NodeSlab(NodeSlab&&) noexcept = default;
  NodeSlab& operator=(NodeSlab&&) noexcept = default;
  NodeSlab(const NodeSlab&) = delete;
  NodeSlab& operator=(const NodeSlab&) = delete;

  /// Pops a free slot for `key` with cleared links and a default payload.
  /// The slab never grows: acquiring past capacity is a programmer error.
  Index acquire(Key key) {
    FBF_CHECK(free_head_ != kNil, "NodeSlab exhausted: acquire past capacity");
    const Index i = free_head_;
    Node& n = nodes_[i];
    free_head_ = n.next;
    n.key = key;
    n.prev = kNil;
    n.next = kNil;
    n.data = Payload{};
    ++in_use_;
    return i;
  }

  /// Returns a slot to the free list. The caller must have unlinked it from
  /// any list first; the slot's contents are dead after this call.
  void release(Index i) {
    FBF_CHECK(in_use_ > 0, "NodeSlab release with nothing in use");
    nodes_[i].next = free_head_;
    free_head_ = i;
    --in_use_;
  }

  Node& operator[](Index i) { return nodes_[i]; }
  const Node& operator[](Index i) const { return nodes_[i]; }

  std::size_t capacity() const { return nodes_.size(); }
  std::size_t in_use() const { return in_use_; }

  /// Forgets every live node and rebuilds the free list; indices handed out
  /// before clear() are invalid afterwards. No memory is freed.
  void clear() { reset_free_list(); }

 private:
  void reset_free_list() {
    free_head_ = nodes_.empty() ? kNil : 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i].next = i + 1 < nodes_.size() ? static_cast<Index>(i + 1) : kNil;
    }
    in_use_ = 0;
  }

  std::vector<Node> nodes_;
  Index free_head_ = kNil;
  std::size_t in_use_ = 0;
};

}  // namespace fbf::cache::core
