// Open-addressing hash table from chunk key (u64) to slab index.
//
// Linear probing over a power-of-two slot array sized at construction for a
// load factor <= 0.25, so probe chains stay short and no rehash (and no
// allocation) ever happens after the constructor. Deletion uses backward
// shifting instead of tombstones: the probe chain after the hole is
// compacted in place, so lookups never scan dead slots and performance does
// not decay with churn — the property a cache index needs, since every
// eviction deletes a key.
//
// Chunk keys are (stripe, cell) packings with most entropy in a few low
// bits; slots are picked after a full 64-bit finalizer mix so clustered key
// ranges still spread across the table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/core/types.h"
#include "util/check.h"

namespace fbf::cache::core {

class KeyIndexTable {
 public:
  /// Sizes the slot array for at most `max_entries` simultaneous entries.
  explicit KeyIndexTable(std::size_t max_entries);

  KeyIndexTable(KeyIndexTable&&) noexcept = default;
  KeyIndexTable& operator=(KeyIndexTable&&) noexcept = default;
  KeyIndexTable(const KeyIndexTable&) = delete;
  KeyIndexTable& operator=(const KeyIndexTable&) = delete;

  // The probe loops are defined inline: every policy operation goes
  // through find/insert/erase, and at slab-core speeds an opaque
  // cross-TU call (plus a re-done key mix) costs as much as the probe
  // itself.

  /// Prefetch hint for an imminent find/insert/erase of `key`. The batch
  /// paths issue one per element up front so the probe loads overlap
  /// instead of serializing, which is the point of batching.
  void prefetch(Key key) const {
    __builtin_prefetch(slots_.data() + slot_of(key));
  }

  /// Slab index stored for `key`, or kNil when absent.
  Index find(Key key) const {
    std::size_t i = slot_of(key);
    while (slots_[i].value != kNil) {
      if (slots_[i].key == key) {
        return slots_[i].value;
      }
      i = (i + 1) & mask_;
    }
    return kNil;
  }

  /// Inserts `key -> value`. The key must be absent and the table below its
  /// entry bound; both are programmer errors otherwise.
  void insert(Key key, Index value) {
    FBF_CHECK(size_ < max_entries_,
              "KeyIndexTable insert past its sized entry bound");
    FBF_CHECK(value != kNil, "KeyIndexTable value kNil is reserved for empty");
    std::size_t i = slot_of(key);
    while (slots_[i].value != kNil) {
      FBF_CHECK(slots_[i].key != key, "KeyIndexTable duplicate insert");
      i = (i + 1) & mask_;
    }
    slots_[i].key = key;
    slots_[i].value = value;
    ++size_;
  }

  /// Removes `key` (which must be present), backward-shifting the probe
  /// chain so no tombstone is left behind.
  void erase(Key key) {
    std::size_t i = slot_of(key);
    while (true) {
      FBF_CHECK(slots_[i].value != kNil, "KeyIndexTable erase of absent key");
      if (slots_[i].key == key) {
        break;
      }
      i = (i + 1) & mask_;
    }
    --size_;
    // Backward shift: walk the cluster after the hole and pull back every
    // entry whose home slot precedes the hole on its probe path (i.e. the
    // hole sits between the entry's home and its current slot, cyclically).
    std::size_t hole = i;
    std::size_t j = i;
    while (true) {
      slots_[hole].value = kNil;
      while (true) {
        j = (j + 1) & mask_;
        if (slots_[j].value == kNil) {
          return;
        }
        const std::size_t home = slot_of(slots_[j].key);
        if (((hole - home) & mask_) < ((j - home) & mask_)) {
          break;  // j's probe path passes through the hole: shift it back
        }
      }
      slots_[hole] = slots_[j];
      hole = j;
    }
  }

  std::size_t size() const { return size_; }
  std::size_t max_entries() const { return max_entries_; }
  /// Slot-array size (test hook for probe/wraparound coverage).
  std::size_t bucket_count() const { return slots_.size(); }
  /// Home slot of a key (test hook: lets tests build probe collisions).
  std::size_t home_slot(Key key) const { return slot_of(key); }

  void clear();

 private:
  struct Slot {
    Key key = 0;
    Index value = kNil;  ///< kNil marks an empty slot
  };

  // splitmix64 finalizer: full-avalanche mix so the structured chunk keys
  // (stripe << shift | cell) spread over the slot array.
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  std::size_t slot_of(Key key) const {
    return static_cast<std::size_t>(mix(key) & mask_);
  }

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t max_entries_ = 0;
};

}  // namespace fbf::cache::core
