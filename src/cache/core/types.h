// Shared vocabulary for the flat cache core (src/cache/core).
//
// Every structure in the core addresses nodes by a 32-bit index into a
// fixed-capacity slab instead of by pointer: indices survive container
// moves, halve the footprint of the intrusive links on 64-bit hosts, and
// make the steady state trivially allocation-free — all storage is sized
// once at construction and recycled through free lists thereafter.
#pragma once

#include <cstdint>

namespace fbf::cache {

/// Chunk key. Defined here (not in policy.h) so the core headers stay
/// self-contained: policy.h itself includes the core's dirty tracker, and
/// a core header including policy.h back would close an include cycle.
/// policy.h re-declares the identical alias for its public surface.
using Key = std::uint64_t;

}  // namespace fbf::cache

namespace fbf::cache::core {

/// Slab slot number. 32 bits bound a single policy instance at ~4G resident
/// entries — far beyond any per-worker cache partition the simulator grants.
using Index = std::uint32_t;

/// Null slot: end of free lists, absent hash entries, empty list ends.
inline constexpr Index kNil = 0xFFFFFFFFu;

/// Payload for policies that need no per-node state beyond key and links.
struct NoData {};

}  // namespace fbf::cache::core
