// Dirty-line tracker for write-back caching, built from the flat core
// primitives: a fixed node slab + one intrusive list (mark order) + an
// open-addressing key index — O(1) mark/clear, zero per-operation
// allocation, deterministic drain order.
//
// The tracker records *which* resident lines hold bytes newer than the
// disk copy and the FBF priority stamped at write time; the owning policy
// keeps it in sync with residency (an evicted line's dirty bit moves to
// the policy's pending write-back queue). Drains walk mark order — the
// oldest dirty line flushes first — which both sides of the differential
// harness reproduce exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/core/hash_index.h"
#include "cache/core/intrusive_list.h"
#include "cache/core/slab.h"
#include "cache/core/types.h"

namespace fbf::cache::core {

/// One dirty line: the chunk key plus the FBF priority (1..3) stamped by
/// the most recent write. Favorable-block write-back policies retain high
/// priorities across periodic flushes.
struct DirtyLine {
  Key key = 0;
  std::uint8_t priority = 1;
};

inline bool operator==(const DirtyLine& a, const DirtyLine& b) {
  return a.key == b.key && a.priority == b.priority;
}

class DirtyTracker {
 public:
  /// Sized for the owning cache's capacity: dirty lines are a subset of
  /// resident lines, so the slab can never overflow while the owner clears
  /// the bit on every eviction.
  explicit DirtyTracker(std::size_t capacity)
      : slab_(capacity), index_(capacity) {}

  bool contains(Key key) const { return index_.find(key) != kNil; }
  std::size_t size() const { return slab_.in_use(); }
  bool empty() const { return slab_.in_use() == 0; }

  /// Marks `key` dirty. Returns true on a clean->dirty transition; an
  /// already-dirty line keeps its mark-order position and is restamped
  /// with the new priority (the latest write wins).
  bool mark(Key key, std::uint8_t priority) {
    const Index i = index_.find(key);
    if (i != kNil) {
      slab_[i].data.priority = priority;
      return false;
    }
    const Index n = slab_.acquire(key);
    slab_[n].data.priority = priority;
    index_.insert(key, n);
    order_.push_back(slab_, n);
    return true;
  }

  /// Clears the dirty bit; returns the stamped priority, or 0 when the
  /// line was already clean.
  std::uint8_t clear(Key key) {
    const Index i = index_.find(key);
    if (i == kNil) {
      return 0;
    }
    const std::uint8_t priority = slab_[i].data.priority;
    order_.erase(slab_, i);
    index_.erase(key);
    slab_.release(i);
    return priority;
  }

  /// Appends every dirty line in mark order without clearing anything.
  void snapshot(std::vector<DirtyLine>& out) const {
    for (Index i = order_.front(); i != kNil; i = slab_[i].next) {
      out.push_back(DirtyLine{slab_[i].key, slab_[i].data.priority});
    }
  }

  /// Moves dirty lines into `out` in mark order and clears their bits.
  /// With `retain_min_priority` > 0, lines stamped at or above it stay
  /// dirty (favorable-block retention); 0 drains everything.
  void drain(std::vector<DirtyLine>& out, int retain_min_priority = 0) {
    Index i = order_.front();
    while (i != kNil) {
      const Index next = slab_[i].next;
      if (retain_min_priority <= 0 ||
          slab_[i].data.priority <
              static_cast<std::uint8_t>(retain_min_priority)) {
        out.push_back(DirtyLine{slab_[i].key, slab_[i].data.priority});
        order_.erase(slab_, i);
        index_.erase(slab_[i].key);
        slab_.release(i);
      }
      i = next;
    }
  }

 private:
  struct Payload {
    std::uint8_t priority = 1;
  };

  NodeSlab<Payload> slab_;
  KeyIndexTable index_;
  IntrusiveList order_;  // front = oldest dirty line
};

}  // namespace fbf::cache::core
