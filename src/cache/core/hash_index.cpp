#include "cache/core/hash_index.h"

namespace fbf::cache::core {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

KeyIndexTable::KeyIndexTable(std::size_t max_entries)
    : max_entries_(max_entries) {
  // Four times the entry bound keeps the load factor <= 0.25, where linear
  // probing averages ~1.2 probes per lookup and backward-shift deletion
  // almost never has to move more than one entry. Slots are 16 bytes, so
  // even the largest policy directory (ARC's 2c+1) stays cheap relative to
  // the chunks the cache represents. The minimum of two slots keeps the
  // probe loop mask-driven even for zero-capacity policies (whose
  // request()/install() never reach the table anyway).
  slots_.resize(next_pow2(max_entries >= 1 ? max_entries * 4 : 2));
  mask_ = slots_.size() - 1;
}

void KeyIndexTable::clear() {
  for (Slot& s : slots_) {
    s.value = kNil;
  }
  size_ = 0;
}

}  // namespace fbf::cache::core
