// Adaptive Replacement Cache (Megiddo & Modha, FAST'03).
//
// Two resident lists (T1 recency, T2 frequency) and two ghost lists
// (B1, B2) steer the adaptation target `p` between recency- and
// frequency-favouring behaviour.
//
// Flat core layout: the whole directory (residents + ghosts, at most 2c
// keys) lives in one node slab and one key index; each node's payload tags
// its list, and the four intrusive lists thread through the shared slab.
// Hits, ghost promotions, and replacements relink nodes in place — zero
// per-operation allocation.
#pragma once

#include "cache/core/hash_index.h"
#include "cache/core/intrusive_list.h"
#include "cache/core/slab.h"
#include "cache/policy.h"

namespace fbf::cache {

class ArcCache final : public CachePolicy {
 public:
  explicit ArcCache(std::size_t capacity);

  bool contains(Key key) const override;
  std::size_t size() const override { return t1_.size() + t2_.size(); }
  const char* name() const override { return "ARC"; }

  /// Adaptation target (test hook): number of slots aimed at T1.
  std::size_t target_p() const { return p_; }
  std::size_t t1_size() const { return t1_.size(); }
  std::size_t t2_size() const { return t2_.size(); }
  std::size_t b1_size() const { return b1_.size(); }
  std::size_t b2_size() const { return b2_.size(); }

 protected:
  bool handle(Key key, int priority) override;
  void handle_install(Key key, int priority) override;
  std::size_t handle_batch(const Key* keys, const std::uint8_t* priorities,
                           std::size_t n, std::uint64_t* hit_words) override;
  void handle_install_batch(const Key* keys, const std::uint8_t* priorities,
                            std::size_t n) override;

 private:
  enum class Where : std::uint8_t { T1, T2, B1, B2 };
  struct Tag {
    Where where = Where::T1;
  };

  core::IntrusiveList& list_of(Where w);

  /// Moves one resident key to the appropriate ghost list.
  void replace(bool hit_in_b2);

  /// Case IV admission into T1: make room (trimming the directory to its
  /// bounds) and push the key MRU. Reads `p_` but never adapts it.
  void admit_to_t1(Key key);

  /// Drops a directory entry entirely (ghost expiry / T1 overflow).
  void drop(core::Index n);

  core::NodeSlab<Tag> slab_;
  core::KeyIndexTable index_;  ///< all four lists share it
  core::IntrusiveList t1_, t2_, b1_, b2_;  // front = LRU
  std::size_t p_ = 0;
};

}  // namespace fbf::cache
