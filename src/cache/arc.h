// Adaptive Replacement Cache (Megiddo & Modha, FAST'03).
//
// Two resident lists (T1 recency, T2 frequency) and two ghost lists
// (B1, B2) steer the adaptation target `p` between recency- and
// frequency-favouring behaviour.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/policy.h"

namespace fbf::cache {

class ArcCache final : public CachePolicy {
 public:
  explicit ArcCache(std::size_t capacity);

  bool contains(Key key) const override;
  std::size_t size() const override;
  const char* name() const override { return "ARC"; }

  /// Adaptation target (test hook): number of slots aimed at T1.
  std::size_t target_p() const { return p_; }
  std::size_t t1_size() const { return t1_.entries.size(); }
  std::size_t t2_size() const { return t2_.entries.size(); }
  std::size_t b1_size() const { return b1_.entries.size(); }
  std::size_t b2_size() const { return b2_.entries.size(); }

 protected:
  bool handle(Key key, int priority) override;
  void handle_install(Key key, int priority) override;

 private:
  struct List {
    std::list<Key> entries;  // front = LRU
    std::unordered_map<Key, std::list<Key>::iterator> index;

    bool contains(Key k) const { return index.count(k) > 0; }
    void push_mru(Key k);
    void erase(Key k);
    Key pop_lru();
  };

  /// Moves one resident key to the appropriate ghost list.
  void replace(bool hit_in_b2);

  /// Case IV admission into T1: make room (trimming the directory to its
  /// bounds) and push the key MRU. Reads `p_` but never adapts it.
  void admit_to_t1(Key key);

  List t1_, t2_, b1_, b2_;
  std::size_t p_ = 0;
};

}  // namespace fbf::cache
