#include "cache/lruk.h"

namespace fbf::cache {

LrukCache::LrukCache(std::size_t capacity)
    : CachePolicy(capacity),
      slab_(capacity),
      index_(capacity),
      order_(capacity, RankLess{&slab_}) {}

bool LrukCache::contains(Key key) const {
  return index_.find(key) != core::kNil;
}

bool LrukCache::handle(Key key, int /*priority*/) {
  ++clock_;
  const core::Index n = index_.find(key);
  if (n != core::kNil) {
    Entry& e = slab_[n].data;
    e.penult = e.last;
    e.last = clock_;
    order_.update(n);  // rank strictly grew: sinks toward the MRU end
    return true;
  }
  if (slab_.in_use() >= capacity()) {
    const core::Index victim = order_.top();
    order_.pop();
    const Key victim_key = slab_[victim].key;
    index_.erase(victim_key);
    slab_.release(victim);
    note_eviction(victim_key);
  }
  const core::Index fresh = slab_.acquire(key);
  slab_[fresh].data.last = clock_;
  order_.push(fresh);
  index_.insert(key, fresh);
  return false;
}


// Batch adapters (policy.h): same per-element semantics as the scalar
// hooks, but the class is final here, so the per-element calls
// devirtualize and the virtual hop is paid once per batch.
std::size_t LrukCache::handle_batch(const Key* keys,
                           const std::uint8_t* priorities, std::size_t n,
                           std::uint64_t* hit_words) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (handle(keys[i], static_cast<int>(priorities[i]))) {
      hit_words[i >> 6] |= std::uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

void LrukCache::handle_install_batch(const Key* keys,
                              const std::uint8_t* priorities,
                              std::size_t n) {
  // No custom install hook: an install is a demand access minus the stats
  // (policy.h), so the batch folds straight through handle().
  for (std::size_t i = 0; i < n; ++i) {
    handle(keys[i], static_cast<int>(priorities[i]));
  }
}

}  // namespace fbf::cache
