#include "cache/lruk.h"

namespace fbf::cache {

LrukCache::LrukCache(std::size_t capacity)
    : CachePolicy(capacity),
      slab_(capacity),
      index_(capacity),
      order_(capacity, RankLess{&slab_}) {}

bool LrukCache::contains(Key key) const {
  return index_.find(key) != core::kNil;
}

bool LrukCache::handle(Key key, int /*priority*/) {
  ++clock_;
  const core::Index n = index_.find(key);
  if (n != core::kNil) {
    Entry& e = slab_[n].data;
    e.penult = e.last;
    e.last = clock_;
    order_.update(n);  // rank strictly grew: sinks toward the MRU end
    return true;
  }
  if (slab_.in_use() >= capacity()) {
    const core::Index victim = order_.top();
    order_.pop();
    index_.erase(slab_[victim].key);
    slab_.release(victim);
    note_eviction();
  }
  const core::Index fresh = slab_.acquire(key);
  slab_[fresh].data.last = clock_;
  order_.push(fresh);
  index_.insert(key, fresh);
  return false;
}

}  // namespace fbf::cache
