#include "cache/lruk.h"

#include "util/check.h"

namespace fbf::cache {

LrukCache::LrukCache(std::size_t capacity) : CachePolicy(capacity) {}

bool LrukCache::contains(Key key) const { return resident_.count(key) > 0; }

bool LrukCache::handle(Key key, int /*priority*/) {
  ++clock_;
  const auto it = resident_.find(key);
  if (it != resident_.end()) {
    order_.erase({rank_of(it->second), key});
    it->second.penult = it->second.last;
    it->second.last = clock_;
    order_.insert({rank_of(it->second), key});
    return true;
  }
  if (resident_.size() >= capacity()) {
    const auto victim = order_.begin();
    FBF_CHECK(victim != order_.end(), "LRU-2 order set empty at eviction");
    resident_.erase(victim->second);
    order_.erase(victim);
    note_eviction();
  }
  Entry e;
  e.last = clock_;
  resident_.emplace(key, e);
  order_.insert({rank_of(e), key});
  return false;
}

}  // namespace fbf::cache
