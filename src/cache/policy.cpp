#include "cache/policy.h"

#include <cctype>

#include "cache/arc.h"
#include "cache/fbf_policy.h"
#include "cache/fifo.h"
#include "cache/lfu.h"
#include "cache/lrfu.h"
#include "cache/lru.h"
#include "cache/lruk.h"
#include "cache/twoq.h"
#include "util/check.h"

namespace fbf::cache {

bool CachePolicy::request(Key key, int priority) {
  FBF_CHECK(priority >= 1 && priority <= 3, "priority must be 1..3");
  if (capacity_ == 0) {
    ++stats_.misses;
    return false;
  }
  const bool hit = handle(key, priority);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return hit;
}

void CachePolicy::install(Key key, int priority) {
  FBF_CHECK(priority >= 1 && priority <= 3, "priority must be 1..3");
  if (capacity_ == 0) {
    return;
  }
  handle_install(key, priority);
}

bool CachePolicy::write(Key key, int priority) {
  FBF_CHECK(priority >= 1 && priority <= 3, "priority must be 1..3");
  if (capacity_ == 0) {
    ++write_stats_.write_misses;
    return false;
  }
  if (dirty_ == nullptr) {
    dirty_ = std::make_unique<core::DirtyTracker>(capacity_);
  }
  const bool hit = handle(key, priority);
  if (hit) {
    ++write_stats_.write_hits;
  } else {
    ++write_stats_.write_misses;
  }
  // Every policy admits the demanded key on a miss, so the line is
  // resident here and the dirty bit always has a line to sit on.
  FBF_CHECK(contains(key), "write() target not resident after handle()");
  if (dirty_->mark(key, static_cast<std::uint8_t>(priority))) {
    ++write_stats_.dirty_installed;
  }
  return hit;
}

void CachePolicy::take_evicted_dirty(std::vector<core::DirtyLine>& out) {
  out.insert(out.end(), evicted_dirty_.begin(), evicted_dirty_.end());
  evicted_dirty_.clear();
}

void CachePolicy::flush_dirty(std::vector<core::DirtyLine>& out,
                              int retain_min_priority) {
  if (dirty_ != nullptr) {
    dirty_->drain(out, retain_min_priority);
  }
}

bool CachePolicy::invalidate_dirty(Key key) {
  return dirty_ != nullptr && dirty_->clear(key) != 0;
}

std::size_t CachePolicy::touch_batch(const Key* keys,
                                     const std::uint8_t* priorities,
                                     std::size_t n,
                                     std::uint64_t* hit_words) {
  for (std::size_t w = 0; w < (n + 63) / 64; ++w) {
    hit_words[w] = 0;
  }
  if (n == 0) {
    return 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    FBF_CHECK(priorities[i] >= 1 && priorities[i] <= 3,
              "priority must be 1..3");
  }
  if (capacity_ == 0) {
    stats_.misses += n;  // zero-capacity caches miss everything
    return 0;
  }
  const std::size_t hits = handle_batch(keys, priorities, n, hit_words);
  stats_.hits += hits;
  stats_.misses += n - hits;
  return hits;
}

void CachePolicy::install_batch(const Key* keys,
                                const std::uint8_t* priorities,
                                std::size_t n) {
  if (n == 0 || capacity_ == 0) {
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    FBF_CHECK(priorities[i] >= 1 && priorities[i] <= 3,
              "priority must be 1..3");
  }
  handle_install_batch(keys, priorities, n);
}

const char* to_string(PolicyId id) {
  switch (id) {
    case PolicyId::Fifo:
      return "FIFO";
    case PolicyId::Lru:
      return "LRU";
    case PolicyId::Lfu:
      return "LFU";
    case PolicyId::Arc:
      return "ARC";
    case PolicyId::Lru2:
      return "LRU-2";
    case PolicyId::TwoQ:
      return "2Q";
    case PolicyId::Lrfu:
      return "LRFU";
    case PolicyId::Fbf:
      return "FBF";
    case PolicyId::FbfNoDemote:
      return "FBF-nodemote";
  }
  return "?";
}

PolicyId policy_from_string(const std::string& name) {
  std::string low;
  for (char c : name) {
    low.push_back(static_cast<char>(std::tolower(c)));
  }
  if (low == "fifo") {
    return PolicyId::Fifo;
  }
  if (low == "lru") {
    return PolicyId::Lru;
  }
  if (low == "lfu") {
    return PolicyId::Lfu;
  }
  if (low == "arc") {
    return PolicyId::Arc;
  }
  if (low == "lru-2" || low == "lru2" || low == "lruk") {
    return PolicyId::Lru2;
  }
  if (low == "2q" || low == "twoq") {
    return PolicyId::TwoQ;
  }
  if (low == "lrfu") {
    return PolicyId::Lrfu;
  }
  if (low == "fbf") {
    return PolicyId::Fbf;
  }
  if (low == "fbf-nodemote" || low == "fbfnodemote") {
    return PolicyId::FbfNoDemote;
  }
  FBF_CHECK(false, "unknown policy name: " + name);
  return PolicyId::Lru;  // unreachable
}

std::unique_ptr<CachePolicy> make_policy(PolicyId id, std::size_t capacity) {
  switch (id) {
    case PolicyId::Fifo:
      return std::make_unique<FifoCache>(capacity);
    case PolicyId::Lru:
      return std::make_unique<LruCache>(capacity);
    case PolicyId::Lfu:
      return std::make_unique<LfuCache>(capacity);
    case PolicyId::Arc:
      return std::make_unique<ArcCache>(capacity);
    case PolicyId::Lru2:
      return std::make_unique<LrukCache>(capacity);
    case PolicyId::TwoQ:
      return std::make_unique<TwoQCache>(capacity);
    case PolicyId::Lrfu:
      return std::make_unique<LrfuCache>(capacity);
    case PolicyId::Fbf:
      return std::make_unique<FbfCache>(capacity, /*demote_on_hit=*/true);
    case PolicyId::FbfNoDemote:
      return std::make_unique<FbfCache>(capacity, /*demote_on_hit=*/false);
  }
  FBF_CHECK(false, "unreachable policy id");
  return nullptr;
}

}  // namespace fbf::cache
