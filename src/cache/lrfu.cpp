#include "cache/lrfu.h"

#include <cmath>

#include "util/check.h"

namespace fbf::cache {

LrfuCache::LrfuCache(std::size_t capacity, double lambda)
    : CachePolicy(capacity), lambda_(lambda) {
  FBF_CHECK(lambda_ >= 0.0 && lambda_ <= 1.0, "LRFU lambda must be in [0,1]");
}

bool LrfuCache::contains(Key key) const { return resident_.count(key) > 0; }

double LrfuCache::rank(const Entry& e) const {
  return std::log2(e.crf) + lambda_ * static_cast<double>(e.last);
}

double LrfuCache::crf(Key key) const {
  const auto it = resident_.find(key);
  if (it == resident_.end()) {
    return 0.0;
  }
  const auto age = static_cast<double>(clock_ - it->second.last);
  return it->second.crf * std::exp2(-lambda_ * age);
}

bool LrfuCache::handle(Key key, int /*priority*/) {
  ++clock_;
  const auto it = resident_.find(key);
  if (it != resident_.end()) {
    Entry& e = it->second;
    order_.erase({rank(e), key});
    const auto age = static_cast<double>(clock_ - e.last);
    e.crf = 1.0 + e.crf * std::exp2(-lambda_ * age);
    e.last = clock_;
    order_.insert({rank(e), key});
    return true;
  }
  if (resident_.size() >= capacity()) {
    const auto victim = order_.begin();
    FBF_CHECK(victim != order_.end(), "LRFU order set empty at eviction");
    const Key victim_key = victim->second;
    resident_.erase(victim_key);
    order_.erase(victim);
    note_eviction(victim_key);
  }
  Entry e;
  e.crf = 1.0;
  e.last = clock_;
  resident_.emplace(key, e);
  order_.insert({rank(e), key});
  return false;
}


// Batch adapters (policy.h): same per-element semantics as the scalar
// hooks, but the class is final here, so the per-element calls
// devirtualize and the virtual hop is paid once per batch.
std::size_t LrfuCache::handle_batch(const Key* keys,
                           const std::uint8_t* priorities, std::size_t n,
                           std::uint64_t* hit_words) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (handle(keys[i], static_cast<int>(priorities[i]))) {
      hit_words[i >> 6] |= std::uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

void LrfuCache::handle_install_batch(const Key* keys,
                              const std::uint8_t* priorities,
                              std::size_t n) {
  // No custom install hook: an install is a demand access minus the stats
  // (policy.h), so the batch folds straight through handle().
  for (std::size_t i = 0; i < n; ++i) {
    handle(keys[i], static_cast<int>(priorities[i]));
  }
}

}  // namespace fbf::cache
