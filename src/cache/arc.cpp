#include "cache/arc.h"

#include <algorithm>

#include "util/check.h"

namespace fbf::cache {

void ArcCache::List::push_mru(Key k) {
  entries.push_back(k);
  index.emplace(k, std::prev(entries.end()));
}

void ArcCache::List::erase(Key k) {
  const auto it = index.find(k);
  FBF_CHECK(it != index.end(), "ARC list erase of absent key");
  entries.erase(it->second);
  index.erase(it);
}

Key ArcCache::List::pop_lru() {
  FBF_CHECK(!entries.empty(), "ARC pop_lru on empty list");
  const Key k = entries.front();
  entries.pop_front();
  index.erase(k);
  return k;
}

ArcCache::ArcCache(std::size_t capacity) : CachePolicy(capacity) {}

bool ArcCache::contains(Key key) const {
  return t1_.contains(key) || t2_.contains(key);
}

std::size_t ArcCache::size() const {
  return t1_.entries.size() + t2_.entries.size();
}

void ArcCache::replace(bool hit_in_b2) {
  const bool from_t1 =
      !t1_.entries.empty() &&
      (t1_.entries.size() > p_ || (hit_in_b2 && t1_.entries.size() == p_));
  if (from_t1) {
    b1_.push_mru(t1_.pop_lru());
  } else {
    FBF_CHECK(!t2_.entries.empty(), "ARC replace with both lists empty");
    b2_.push_mru(t2_.pop_lru());
  }
  note_eviction();
}

bool ArcCache::handle(Key key, int /*priority*/) {
  const std::size_t c = capacity();

  if (t1_.contains(key)) {  // Case I: hit in T1 -> promote to T2
    t1_.erase(key);
    t2_.push_mru(key);
    return true;
  }
  if (t2_.contains(key)) {  // Case I: hit in T2 -> MRU of T2
    t2_.erase(key);
    t2_.push_mru(key);
    return true;
  }

  if (b1_.contains(key)) {  // Case II: ghost hit favouring recency
    const std::size_t delta =
        std::max<std::size_t>(1, b2_.entries.size() /
                                     std::max<std::size_t>(
                                         1, b1_.entries.size()));
    p_ = std::min(c, p_ + delta);
    replace(/*hit_in_b2=*/false);
    b1_.erase(key);
    t2_.push_mru(key);
    return false;  // resident miss: the data still comes from disk
  }
  if (b2_.contains(key)) {  // Case III: ghost hit favouring frequency
    const std::size_t delta =
        std::max<std::size_t>(1, b1_.entries.size() /
                                     std::max<std::size_t>(
                                         1, b2_.entries.size()));
    p_ = p_ > delta ? p_ - delta : 0;
    replace(/*hit_in_b2=*/true);
    b2_.erase(key);
    t2_.push_mru(key);
    return false;
  }

  // Case IV: full miss.
  admit_to_t1(key);
  return false;
}

void ArcCache::admit_to_t1(Key key) {
  const std::size_t c = capacity();
  const std::size_t l1 = t1_.entries.size() + b1_.entries.size();
  if (l1 == c) {
    if (t1_.entries.size() < c) {
      b1_.pop_lru();
      replace(/*hit_in_b2=*/false);
    } else {
      t1_.pop_lru();
      note_eviction();
    }
  } else {
    const std::size_t total = l1 + t2_.entries.size() + b2_.entries.size();
    if (total >= c) {
      if (total == 2 * c) {
        b2_.pop_lru();
      }
      replace(/*hit_in_b2=*/false);
    }
  }
  t1_.push_mru(key);
}

void ArcCache::handle_install(Key key, int /*priority*/) {
  if (t1_.contains(key) || t2_.contains(key)) {
    return;  // no reuse evidence: leave recency/frequency state alone
  }
  // A ghosted key becomes resident again, but without the Case II/III
  // adaptation a demand miss would apply: p_ stays put.
  if (b1_.contains(key)) {
    b1_.erase(key);
  } else if (b2_.contains(key)) {
    b2_.erase(key);
  }
  admit_to_t1(key);
}

}  // namespace fbf::cache
