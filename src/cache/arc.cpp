#include "cache/arc.h"

#include <algorithm>

#include "util/check.h"

namespace fbf::cache {

namespace {

std::size_t directory_bound(std::size_t capacity) {
  // ARC's directory invariant is |T1|+|T2|+|B1|+|B2| <= 2c; the +1 covers
  // the instant inside handle() where the incoming key is admitted before
  // the caller-visible state settles.
  return capacity > 0 ? 2 * capacity + 1 : 0;
}

}  // namespace

ArcCache::ArcCache(std::size_t capacity)
    : CachePolicy(capacity),
      slab_(directory_bound(capacity)),
      index_(directory_bound(capacity)) {}

core::IntrusiveList& ArcCache::list_of(Where w) {
  switch (w) {
    case Where::T1:
      return t1_;
    case Where::T2:
      return t2_;
    case Where::B1:
      return b1_;
    case Where::B2:
      return b2_;
  }
  FBF_CHECK(false, "unreachable ARC list tag");
  return t1_;
}

bool ArcCache::contains(Key key) const {
  const core::Index n = index_.find(key);
  return n != core::kNil && (slab_[n].data.where == Where::T1 ||
                             slab_[n].data.where == Where::T2);
}

void ArcCache::drop(core::Index n) {
  list_of(slab_[n].data.where).erase(slab_, n);
  index_.erase(slab_[n].key);
  slab_.release(n);
}

void ArcCache::replace(bool hit_in_b2) {
  const bool from_t1 =
      !t1_.empty() && (t1_.size() > p_ || (hit_in_b2 && t1_.size() == p_));
  // The demoted resident keeps its directory entry: it just moves to the
  // LRU end of the matching ghost list.
  Key victim_key;
  if (from_t1) {
    const core::Index n = t1_.pop_front(slab_);
    victim_key = slab_[n].key;
    slab_[n].data.where = Where::B1;
    b1_.push_back(slab_, n);
  } else {
    FBF_CHECK(!t2_.empty(), "ARC replace with both lists empty");
    const core::Index n = t2_.pop_front(slab_);
    victim_key = slab_[n].key;
    slab_[n].data.where = Where::B2;
    b2_.push_back(slab_, n);
  }
  note_eviction(victim_key);
}

bool ArcCache::handle(Key key, int /*priority*/) {
  const std::size_t c = capacity();
  const core::Index n = index_.find(key);

  if (n != core::kNil) {
    switch (slab_[n].data.where) {
      case Where::T1:  // Case I: hit in T1 -> promote to T2
        t1_.erase(slab_, n);
        slab_[n].data.where = Where::T2;
        t2_.push_back(slab_, n);
        return true;
      case Where::T2:  // Case I: hit in T2 -> MRU of T2
        t2_.move_to_back(slab_, n);
        return true;
      case Where::B1: {  // Case II: ghost hit favouring recency
        const std::size_t delta = std::max<std::size_t>(
            1, b2_.size() / std::max<std::size_t>(1, b1_.size()));
        p_ = std::min(c, p_ + delta);
        replace(/*hit_in_b2=*/false);
        b1_.erase(slab_, n);
        slab_[n].data.where = Where::T2;
        t2_.push_back(slab_, n);
        return false;  // resident miss: the data still comes from disk
      }
      case Where::B2: {  // Case III: ghost hit favouring frequency
        const std::size_t delta = std::max<std::size_t>(
            1, b1_.size() / std::max<std::size_t>(1, b2_.size()));
        p_ = p_ > delta ? p_ - delta : 0;
        replace(/*hit_in_b2=*/true);
        b2_.erase(slab_, n);
        slab_[n].data.where = Where::T2;
        t2_.push_back(slab_, n);
        return false;
      }
    }
  }

  // Case IV: full miss.
  admit_to_t1(key);
  return false;
}

void ArcCache::admit_to_t1(Key key) {
  const std::size_t c = capacity();
  const std::size_t l1 = t1_.size() + b1_.size();
  if (l1 == c) {
    if (t1_.size() < c) {
      drop(b1_.front());
      replace(/*hit_in_b2=*/false);
    } else {
      const core::Index victim = t1_.front();
      const Key victim_key = slab_[victim].key;
      drop(victim);
      note_eviction(victim_key);
    }
  } else {
    const std::size_t total = l1 + t2_.size() + b2_.size();
    if (total >= c) {
      if (total == 2 * c) {
        drop(b2_.front());
      }
      replace(/*hit_in_b2=*/false);
    }
  }
  const core::Index n = slab_.acquire(key);
  slab_[n].data.where = Where::T1;
  t1_.push_back(slab_, n);
  index_.insert(key, n);
}

void ArcCache::handle_install(Key key, int /*priority*/) {
  const core::Index n = index_.find(key);
  if (n != core::kNil && (slab_[n].data.where == Where::T1 ||
                          slab_[n].data.where == Where::T2)) {
    return;  // no reuse evidence: leave recency/frequency state alone
  }
  // A ghosted key becomes resident again, but without the Case II/III
  // adaptation a demand miss would apply: p_ stays put.
  if (n != core::kNil) {
    drop(n);
  }
  admit_to_t1(key);
}


// Batch adapters (policy.h): same per-element semantics as the scalar
// hooks, but the class is final here, so the per-element calls
// devirtualize and the virtual hop is paid once per batch.
std::size_t ArcCache::handle_batch(const Key* keys,
                           const std::uint8_t* priorities, std::size_t n,
                           std::uint64_t* hit_words) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (handle(keys[i], static_cast<int>(priorities[i]))) {
      hit_words[i >> 6] |= std::uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

void ArcCache::handle_install_batch(const Key* keys,
                              const std::uint8_t* priorities,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    handle_install(keys[i], static_cast<int>(priorities[i]));
  }
}

}  // namespace fbf::cache
