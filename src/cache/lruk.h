// LRU-2 (O'Neil et al., SIGMOD'93): evict the resident key whose
// second-most-recent access is oldest; keys seen only once rank lowest.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>

#include "cache/policy.h"

namespace fbf::cache {

class LrukCache final : public CachePolicy {
 public:
  explicit LrukCache(std::size_t capacity);

  bool contains(Key key) const override;
  std::size_t size() const override { return resident_.size(); }
  const char* name() const override { return "LRU-2"; }

 protected:
  bool handle(Key key, int priority) override;

 private:
  struct Entry {
    std::uint64_t last = 0;
    std::uint64_t penult = 0;  ///< 0 = only one access so far
  };

  // Eviction order: smallest (penult, last). penult 0 sorts first, so
  // singly-accessed keys are evicted before any twice-accessed key.
  using Rank = std::pair<std::uint64_t, std::uint64_t>;

  Rank rank_of(const Entry& e) const { return {e.penult, e.last}; }

  std::uint64_t clock_ = 0;
  std::unordered_map<Key, Entry> resident_;
  std::set<std::pair<Rank, Key>> order_;
};

}  // namespace fbf::cache
