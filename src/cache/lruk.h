// LRU-2 (O'Neil et al., SIGMOD'93): evict the resident key whose
// second-most-recent access is oldest; keys seen only once rank lowest.
//
// Flat core layout: nodes carry (penult, last) access clocks and an
// indexed binary min-heap over the slab keeps the eviction order — the
// (penult, last) ranks are unique (the clock is strictly increasing), so
// the heap minimum is exactly the std::set ordering the golden model uses,
// with no per-node allocation.
#pragma once

#include <cstdint>

#include "cache/core/hash_index.h"
#include "cache/core/indexed_heap.h"
#include "cache/core/slab.h"
#include "cache/policy.h"

namespace fbf::cache {

class LrukCache final : public CachePolicy {
 public:
  explicit LrukCache(std::size_t capacity);

  bool contains(Key key) const override;
  std::size_t size() const override { return slab_.in_use(); }
  const char* name() const override { return "LRU-2"; }

 protected:
  bool handle(Key key, int priority) override;
  std::size_t handle_batch(const Key* keys, const std::uint8_t* priorities,
                           std::size_t n, std::uint64_t* hit_words) override;
  void handle_install_batch(const Key* keys, const std::uint8_t* priorities,
                            std::size_t n) override;

 private:
  struct Entry {
    std::uint64_t last = 0;
    std::uint64_t penult = 0;  ///< 0 = only one access so far
  };

  using Slab = core::NodeSlab<Entry>;

  // Eviction order: smallest (penult, last). penult 0 sorts first, so
  // singly-accessed keys are evicted before any twice-accessed key.
  struct RankLess {
    const Slab* slab;
    bool operator()(core::Index a, core::Index b) const {
      const Entry& ea = (*slab)[a].data;
      const Entry& eb = (*slab)[b].data;
      return ea.penult != eb.penult ? ea.penult < eb.penult
                                    : ea.last < eb.last;
    }
  };

  std::uint64_t clock_ = 0;
  Slab slab_;
  core::KeyIndexTable index_;
  core::IndexedMinHeap<RankLess> order_;
};

}  // namespace fbf::cache
