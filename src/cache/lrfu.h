// LRFU (Lee et al., IEEE ToC 2001) — the recency/frequency spectrum policy
// the paper's related work cites. Each block carries a CRF (combined
// recency and frequency) value C(t) = sum over past references of
// (1/2)^(lambda * age); lambda -> 0 degenerates to LFU, lambda -> 1 to LRU.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>

#include "cache/policy.h"

namespace fbf::cache {

class LrfuCache final : public CachePolicy {
 public:
  explicit LrfuCache(std::size_t capacity, double lambda = 0.1);

  bool contains(Key key) const override;
  std::size_t size() const override { return resident_.size(); }
  const char* name() const override { return "LRFU"; }

  /// Current CRF of a resident key at the internal clock (test hook).
  double crf(Key key) const;

 protected:
  bool handle(Key key, int priority) override;
  std::size_t handle_batch(const Key* keys, const std::uint8_t* priorities,
                           std::size_t n, std::uint64_t* hit_words) override;
  void handle_install_batch(const Key* keys, const std::uint8_t* priorities,
                            std::size_t n) override;

 private:
  struct Entry {
    double crf = 0.0;          // value as of `last`
    std::uint64_t last = 0;    // clock of last reference
  };

  // Victim ordering trick: between updates every CRF decays at the same
  // rate, so the order of decayed(c, last) = crf * 2^(-lambda*(t-last)) is
  // time-invariant. Rank by log2(crf) + lambda * last instead — no clock
  // sweep needed and no overflow.
  double rank(const Entry& e) const;

  double lambda_;
  std::uint64_t clock_ = 0;
  std::unordered_map<Key, Entry> resident_;
  std::set<std::pair<double, Key>> order_;  // ascending rank = evict first
};

}  // namespace fbf::cache
