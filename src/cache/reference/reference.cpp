#include "cache/reference/reference.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"

namespace fbf::cache::reference {

bool ReferencePolicy::request(Key key, int priority) {
  FBF_CHECK(priority >= 1 && priority <= 3, "priority must be 1..3");
  if (capacity() == 0) {
    ++stats_.misses;
    return false;
  }
  const bool hit = handle(key, priority);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return hit;
}

void ReferencePolicy::install(Key key, int priority) {
  FBF_CHECK(priority >= 1 && priority <= 3, "priority must be 1..3");
  if (capacity() == 0) {
    return;
  }
  handle_install(key, priority);
}

std::size_t ReferencePolicy::touch_batch(const Key* keys,
                                         const std::uint8_t* priorities,
                                         std::size_t n,
                                         std::uint64_t* hit_words) {
  for (std::size_t w = 0; w < (n + 63) / 64; ++w) {
    hit_words[w] = 0;
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (request(keys[i], static_cast<int>(priorities[i]))) {
      hit_words[i >> 6] |= std::uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

void ReferencePolicy::install_batch(const Key* keys,
                                    const std::uint8_t* priorities,
                                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    install(keys[i], static_cast<int>(priorities[i]));
  }
}

bool ReferencePolicy::write(Key key, int priority) {
  FBF_CHECK(priority >= 1 && priority <= 3, "priority must be 1..3");
  if (capacity() == 0) {
    ++write_stats_.write_misses;
    return false;
  }
  const bool hit = handle(key, priority);
  if (hit) {
    ++write_stats_.write_hits;
  } else {
    ++write_stats_.write_misses;
  }
  FBF_CHECK(contains(key), "reference write() target not resident");
  for (core::DirtyLine& line : dirty_) {
    if (line.key == key) {
      line.priority = static_cast<std::uint8_t>(priority);  // latest wins
      return hit;
    }
  }
  dirty_.push_back(core::DirtyLine{key, static_cast<std::uint8_t>(priority)});
  ++write_stats_.dirty_installed;
  return hit;
}

bool ReferencePolicy::is_dirty(Key key) const {
  for (const core::DirtyLine& line : dirty_) {
    if (line.key == key) {
      return true;
    }
  }
  return false;
}

void ReferencePolicy::take_evicted_dirty(std::vector<core::DirtyLine>& out) {
  out.insert(out.end(), evicted_dirty_.begin(), evicted_dirty_.end());
  evicted_dirty_.clear();
}

void ReferencePolicy::flush_dirty(std::vector<core::DirtyLine>& out,
                                  int retain_min_priority) {
  std::vector<core::DirtyLine> kept;
  for (const core::DirtyLine& line : dirty_) {
    if (retain_min_priority > 0 &&
        line.priority >= static_cast<std::uint8_t>(retain_min_priority)) {
      kept.push_back(line);
    } else {
      out.push_back(line);
    }
  }
  dirty_ = std::move(kept);
}

bool ReferencePolicy::invalidate_dirty(Key key) {
  for (auto it = dirty_.begin(); it != dirty_.end(); ++it) {
    if (it->key == key) {
      dirty_.erase(it);
      return true;
    }
  }
  return false;
}

void ReferencePolicy::note_eviction(Key key) {
  ++stats_.evictions;
  for (auto it = dirty_.begin(); it != dirty_.end(); ++it) {
    if (it->key == key) {
      evicted_dirty_.push_back(*it);
      ++write_stats_.evicted_dirty;
      dirty_.erase(it);
      break;
    }
  }
}

namespace {

bool has_key(const std::vector<Key>& v, Key k) {
  return std::find(v.begin(), v.end(), k) != v.end();
}

void erase_key(std::vector<Key>& v, Key k) {
  const auto it = std::find(v.begin(), v.end(), k);
  FBF_CHECK(it != v.end(), "reference erase of absent key");
  v.erase(it);
}

/// Pops the front (LRU / oldest) element of a vector-backed queue.
Key pop_front(std::vector<Key>& v) {
  FBF_CHECK(!v.empty(), "reference pop_front on empty queue");
  const Key k = v.front();
  v.erase(v.begin());
  return k;
}

// ---------------------------------------------------------------------------
// FIFO: evict in insertion order; hits do not move the key.
class RefFifo final : public ReferencePolicy {
 public:
  using ReferencePolicy::ReferencePolicy;

  bool contains(Key key) const override { return has_key(order_, key); }
  std::size_t size() const override { return order_.size(); }
  std::vector<Key> resident() const override { return order_; }

 protected:
  bool handle(Key key, int /*priority*/) override {
    if (has_key(order_, key)) {
      return true;
    }
    if (order_.size() >= capacity()) {
      note_eviction(pop_front(order_));
    }
    order_.push_back(key);
    return false;
  }

 private:
  std::vector<Key> order_;  // front = oldest
};

// ---------------------------------------------------------------------------
// LRU: hits move the key to the MRU end; evict the LRU front.
class RefLru final : public ReferencePolicy {
 public:
  using ReferencePolicy::ReferencePolicy;

  bool contains(Key key) const override { return has_key(order_, key); }
  std::size_t size() const override { return order_.size(); }
  std::vector<Key> resident() const override { return order_; }

 protected:
  bool handle(Key key, int /*priority*/) override {
    if (has_key(order_, key)) {
      erase_key(order_, key);
      order_.push_back(key);
      return true;
    }
    if (order_.size() >= capacity()) {
      note_eviction(pop_front(order_));
    }
    order_.push_back(key);
    return false;
  }

 private:
  std::vector<Key> order_;  // front = LRU
};

// ---------------------------------------------------------------------------
// LFU: evict the lowest-frequency key; among equals, the one that reached
// that frequency first (the optimized bucket lists append on every bump, so
// bucket order is attainment order).
class RefLfu final : public ReferencePolicy {
 public:
  using ReferencePolicy::ReferencePolicy;

  bool contains(Key key) const override { return entries_.count(key) > 0; }
  std::size_t size() const override { return entries_.size(); }
  std::vector<Key> resident() const override {
    std::vector<Key> out;
    for (const auto& [k, e] : entries_) {
      out.push_back(k);
    }
    return out;
  }

 protected:
  bool handle(Key key, int /*priority*/) override {
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++it->second.freq;
      it->second.attained = ++seq_;
      return true;
    }
    if (entries_.size() >= capacity()) {
      auto victim = entries_.begin();
      for (auto e = entries_.begin(); e != entries_.end(); ++e) {
        if (e->second.freq < victim->second.freq ||
            (e->second.freq == victim->second.freq &&
             e->second.attained < victim->second.attained)) {
          victim = e;
        }
      }
      const Key victim_key = victim->first;
      entries_.erase(victim);
      note_eviction(victim_key);
    }
    entries_[key] = Entry{1, ++seq_};
    return false;
  }

 private:
  struct Entry {
    std::uint64_t freq = 0;
    std::uint64_t attained = 0;  ///< when the current freq was reached
  };
  std::uint64_t seq_ = 0;
  std::unordered_map<Key, Entry> entries_;
};

// ---------------------------------------------------------------------------
// LRU-2: evict the smallest (penultimate access, last access); keys seen
// once (penult 0) go first. The clock ticks once per handled operation,
// exactly like the optimized policy. Ties broken by smaller key (the
// optimized ordered set sorts by (rank, key)).
class RefLru2 final : public ReferencePolicy {
 public:
  using ReferencePolicy::ReferencePolicy;

  bool contains(Key key) const override { return entries_.count(key) > 0; }
  std::size_t size() const override { return entries_.size(); }
  std::vector<Key> resident() const override {
    std::vector<Key> out;
    for (const auto& [k, e] : entries_) {
      out.push_back(k);
    }
    return out;
  }

 protected:
  bool handle(Key key, int /*priority*/) override {
    ++clock_;
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.penult = it->second.last;
      it->second.last = clock_;
      return true;
    }
    if (entries_.size() >= capacity()) {
      auto victim = entries_.begin();
      for (auto e = entries_.begin(); e != entries_.end(); ++e) {
        const auto er = std::make_tuple(e->second.penult, e->second.last,
                                        e->first);
        const auto vr = std::make_tuple(victim->second.penult,
                                        victim->second.last, victim->first);
        if (er < vr) {
          victim = e;
        }
      }
      const Key victim_key = victim->first;
      entries_.erase(victim);
      note_eviction(victim_key);
    }
    entries_[key] = Entry{clock_, 0};
    return false;
  }

 private:
  struct Entry {
    std::uint64_t last = 0;
    std::uint64_t penult = 0;
  };
  std::uint64_t clock_ = 0;
  std::unordered_map<Key, Entry> entries_;
};

// ---------------------------------------------------------------------------
// LRFU: CRF C(t) = sum of (1/2)^(lambda * age) over past references. Evicts
// the smallest time-invariant rank log2(crf) + lambda * last (the identical
// expression the optimized policy stores in its ordered set, so the doubles
// agree bit-for-bit); ties broken by smaller key.
class RefLrfu final : public ReferencePolicy {
 public:
  RefLrfu(std::size_t capacity, double lambda)
      : ReferencePolicy(capacity), lambda_(lambda) {}

  bool contains(Key key) const override { return entries_.count(key) > 0; }
  std::size_t size() const override { return entries_.size(); }
  std::vector<Key> resident() const override {
    std::vector<Key> out;
    for (const auto& [k, e] : entries_) {
      out.push_back(k);
    }
    return out;
  }

 protected:
  bool handle(Key key, int /*priority*/) override {
    ++clock_;
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      const auto age = static_cast<double>(clock_ - it->second.last);
      it->second.crf = 1.0 + it->second.crf * std::exp2(-lambda_ * age);
      it->second.last = clock_;
      return true;
    }
    if (entries_.size() >= capacity()) {
      auto victim = entries_.begin();
      for (auto e = entries_.begin(); e != entries_.end(); ++e) {
        const auto er = std::make_pair(rank(e->second), e->first);
        const auto vr = std::make_pair(rank(victim->second), victim->first);
        if (er < vr) {
          victim = e;
        }
      }
      const Key victim_key = victim->first;
      entries_.erase(victim);
      note_eviction(victim_key);
    }
    entries_[key] = Entry{1.0, clock_};
    return false;
  }

 private:
  struct Entry {
    double crf = 0.0;
    std::uint64_t last = 0;
  };

  double rank(const Entry& e) const {
    return std::log2(e.crf) + lambda_ * static_cast<double>(e.last);
  }

  double lambda_;
  std::uint64_t clock_ = 0;
  std::unordered_map<Key, Entry> entries_;
};

// ---------------------------------------------------------------------------
// ARC, transcribed from Megiddo & Modha (FAST'03) Table I. Four vectors
// (front = LRU, back = MRU) stand in for the optimized list+index pairs.
class RefArc final : public ReferencePolicy {
 public:
  using ReferencePolicy::ReferencePolicy;

  bool contains(Key key) const override {
    return has_key(t1_, key) || has_key(t2_, key);
  }
  std::size_t size() const override { return t1_.size() + t2_.size(); }
  std::vector<Key> resident() const override {
    std::vector<Key> out = t1_;
    out.insert(out.end(), t2_.begin(), t2_.end());
    return out;
  }

 protected:
  bool handle(Key key, int /*priority*/) override {
    const std::size_t c = capacity();

    if (has_key(t1_, key)) {  // Case I: T1 hit promotes to T2
      erase_key(t1_, key);
      t2_.push_back(key);
      return true;
    }
    if (has_key(t2_, key)) {  // Case I: T2 hit refreshes recency
      erase_key(t2_, key);
      t2_.push_back(key);
      return true;
    }
    if (has_key(b1_, key)) {  // Case II: adapt toward recency
      const std::size_t delta = std::max<std::size_t>(
          1, b2_.size() / std::max<std::size_t>(1, b1_.size()));
      p_ = std::min(c, p_ + delta);
      replace(/*hit_in_b2=*/false);
      erase_key(b1_, key);
      t2_.push_back(key);
      return false;
    }
    if (has_key(b2_, key)) {  // Case III: adapt toward frequency
      const std::size_t delta = std::max<std::size_t>(
          1, b1_.size() / std::max<std::size_t>(1, b2_.size()));
      p_ = p_ > delta ? p_ - delta : 0;
      replace(/*hit_in_b2=*/true);
      erase_key(b2_, key);
      t2_.push_back(key);
      return false;
    }
    admit_to_t1(key);  // Case IV
    return false;
  }

  void handle_install(Key key, int /*priority*/) override {
    if (has_key(t1_, key) || has_key(t2_, key)) {
      return;
    }
    if (has_key(b1_, key)) {
      erase_key(b1_, key);
    } else if (has_key(b2_, key)) {
      erase_key(b2_, key);
    }
    admit_to_t1(key);
  }

 private:
  void replace(bool hit_in_b2) {
    const bool from_t1 =
        !t1_.empty() && (t1_.size() > p_ || (hit_in_b2 && t1_.size() == p_));
    Key victim_key;
    if (from_t1) {
      victim_key = pop_front(t1_);
      b1_.push_back(victim_key);
    } else {
      FBF_CHECK(!t2_.empty(), "reference ARC replace with both lists empty");
      victim_key = pop_front(t2_);
      b2_.push_back(victim_key);
    }
    note_eviction(victim_key);
  }

  void admit_to_t1(Key key) {
    const std::size_t c = capacity();
    const std::size_t l1 = t1_.size() + b1_.size();
    if (l1 == c) {
      if (t1_.size() < c) {
        pop_front(b1_);
        replace(/*hit_in_b2=*/false);
      } else {
        note_eviction(pop_front(t1_));
      }
    } else {
      const std::size_t total = l1 + t2_.size() + b2_.size();
      if (total >= c) {
        if (total == 2 * c) {
          pop_front(b2_);
        }
        replace(/*hit_in_b2=*/false);
      }
    }
    t1_.push_back(key);
  }

  std::vector<Key> t1_, t2_, b1_, b2_;
  std::size_t p_ = 0;
};

// ---------------------------------------------------------------------------
// Simplified 2Q (Johnson & Shasha, VLDB'94): FIFO probation A1in (hits stay
// put), ghost history A1out, protected LRU main queue Am.
class Ref2Q final : public ReferencePolicy {
 public:
  explicit Ref2Q(std::size_t capacity)
      : ReferencePolicy(capacity),
        kin_(std::max<std::size_t>(1, capacity / 4)),
        kout_(std::max<std::size_t>(1, capacity / 2)) {}

  bool contains(Key key) const override {
    return has_key(a1in_, key) || has_key(am_, key);
  }
  std::size_t size() const override { return a1in_.size() + am_.size(); }
  std::vector<Key> resident() const override {
    std::vector<Key> out = a1in_;
    out.insert(out.end(), am_.begin(), am_.end());
    return out;
  }

 protected:
  bool handle(Key key, int /*priority*/) override {
    if (has_key(am_, key)) {
      erase_key(am_, key);
      am_.push_back(key);
      return true;
    }
    if (has_key(a1in_, key)) {
      return true;  // probation hits do not move
    }
    if (has_key(a1out_, key)) {
      erase_key(a1out_, key);
      evict_for_insert();
      am_.push_back(key);
      return false;
    }
    evict_for_insert();
    a1in_.push_back(key);
    return false;
  }

  void handle_install(Key key, int /*priority*/) override {
    if (has_key(am_, key) || has_key(a1in_, key)) {
      return;
    }
    if (has_key(a1out_, key)) {
      erase_key(a1out_, key);  // re-enters probation, never promoted
    }
    evict_for_insert();
    a1in_.push_back(key);
  }

 private:
  void evict_for_insert() {
    if (size() < capacity()) {
      return;
    }
    Key victim_key;
    if (a1in_.size() > kin_ || (am_.empty() && !a1in_.empty())) {
      victim_key = pop_front(a1in_);
      a1out_.push_back(victim_key);
      if (a1out_.size() > kout_) {
        pop_front(a1out_);
      }
    } else {
      victim_key = pop_front(am_);
    }
    note_eviction(victim_key);
  }

  std::size_t kin_;
  std::size_t kout_;
  std::vector<Key> a1in_;   // front = oldest
  std::vector<Key> a1out_;  // ghost FIFO
  std::vector<Key> am_;     // front = LRU
};

// ---------------------------------------------------------------------------
// FBF, paper Algorithm 1 transcribed literally: three LRU queues by
// priority; a hit consumes one expected reference and demotes one level
// (Queue1 hits refresh recency); replacement drains Queue1, then Queue2,
// and touches Queue3 only when nothing else remains.
class RefFbf final : public ReferencePolicy {
 public:
  RefFbf(std::size_t capacity, bool demote_on_hit)
      : ReferencePolicy(capacity), demote_on_hit_(demote_on_hit) {}

  bool contains(Key key) const override {
    return level_of(key) != 0;
  }
  std::size_t size() const override {
    return queues_[0].size() + queues_[1].size() + queues_[2].size();
  }
  std::vector<Key> resident() const override {
    std::vector<Key> out;
    for (const auto& q : queues_) {
      out.insert(out.end(), q.begin(), q.end());
    }
    return out;
  }

 protected:
  bool handle(Key key, int priority) override {
    const int level = level_of(key);
    if (level != 0) {
      erase_key(queues_[static_cast<std::size_t>(level - 1)], key);
      const int next = demote_on_hit_ ? (level > 1 ? level - 1 : 1) : level;
      queues_[static_cast<std::size_t>(next - 1)].push_back(key);
      return true;
    }
    if (size() >= capacity()) {
      for (auto& q : queues_) {
        if (!q.empty()) {
          note_eviction(pop_front(q));
          break;
        }
      }
    }
    queues_[static_cast<std::size_t>(priority - 1)].push_back(key);
    return false;
  }

 private:
  int level_of(Key key) const {
    for (int level = 1; level <= 3; ++level) {
      if (has_key(queues_[static_cast<std::size_t>(level - 1)], key)) {
        return level;
      }
    }
    return 0;
  }

  bool demote_on_hit_;
  std::vector<Key> queues_[3];  // front = LRU
};

}  // namespace

std::unique_ptr<ReferencePolicy> make_reference_policy(PolicyId id,
                                                       std::size_t capacity) {
  switch (id) {
    case PolicyId::Fifo:
      return std::make_unique<RefFifo>(capacity);
    case PolicyId::Lru:
      return std::make_unique<RefLru>(capacity);
    case PolicyId::Lfu:
      return std::make_unique<RefLfu>(capacity);
    case PolicyId::Arc:
      return std::make_unique<RefArc>(capacity);
    case PolicyId::Lru2:
      return std::make_unique<RefLru2>(capacity);
    case PolicyId::TwoQ:
      return std::make_unique<Ref2Q>(capacity);
    case PolicyId::Lrfu:
      return std::make_unique<RefLrfu>(capacity, /*lambda=*/0.1);
    case PolicyId::Fbf:
      return std::make_unique<RefFbf>(capacity, /*demote_on_hit=*/true);
    case PolicyId::FbfNoDemote:
      return std::make_unique<RefFbf>(capacity, /*demote_on_hit=*/false);
  }
  FBF_CHECK(false, "unreachable policy id");
  return nullptr;
}

}  // namespace fbf::cache::reference
