// Golden-model replacement policies for differential validation.
//
// Each model re-implements one policy from its paper description using the
// most obvious data structures available — plain vectors scanned in O(n) —
// with none of the iterator/bucket/ordered-set bookkeeping the optimized
// policies in src/cache use for speed. The differential fuzz driver
// (tests/cache/differential_test.cpp) replays randomized request/install
// streams through both implementations and asserts identical hit/miss
// results, stats, and resident sets, so a subtle bookkeeping bug in either
// side surfaces as a divergence instead of silently skewing every
// hit-ratio and reconstruction-time curve in the evaluation.
//
// The models mirror the semantics of CachePolicy exactly, including the
// deliberate tie-breaking rules (documented per model) and the install()
// contract: installs carry no reuse evidence, so ARC never adapts `p` or
// counts a ghost hit and 2Q never ghost-promotes (see policy.h).
#pragma once

#include <memory>
#include <vector>

#include "cache/policy.h"

namespace fbf::cache::reference {

/// Reference-side twin of CachePolicy: same request/install/stats surface
/// plus resident-set introspection for exact state comparison.
class ReferencePolicy {
 public:
  explicit ReferencePolicy(std::size_t capacity) : capacity_(capacity) {}
  virtual ~ReferencePolicy() = default;

  ReferencePolicy(const ReferencePolicy&) = delete;
  ReferencePolicy& operator=(const ReferencePolicy&) = delete;

  bool request(Key key, int priority = 1);
  void install(Key key, int priority = 1);

  /// Batch twins of CachePolicy::touch_batch / install_batch, with the same
  /// contract: exactly equivalent to the scalar calls in order. The golden
  /// side has no fast path — these loop over request()/install() — so the
  /// differential fuzz can replay one interleaving through both surfaces
  /// and pin batch ≡ sequential for the optimized ports.
  std::size_t touch_batch(const Key* keys, const std::uint8_t* priorities,
                          std::size_t n, std::uint64_t* hit_words);
  void install_batch(const Key* keys, const std::uint8_t* priorities,
                     std::size_t n);

  /// Golden twin of CachePolicy's write-back surface (policy.h). The
  /// dirty layer here is the obvious O(n) one — a mark-ordered vector of
  /// {key, priority} scanned linearly — with none of the slab/index
  /// machinery the optimized side uses, so a bookkeeping bug on either
  /// side diverges in the fuzz instead of cancelling out.
  bool write(Key key, int priority = 1);
  bool is_dirty(Key key) const;
  std::size_t dirty_count() const { return dirty_.size(); }
  void take_evicted_dirty(std::vector<core::DirtyLine>& out);
  void flush_dirty(std::vector<core::DirtyLine>& out,
                   int retain_min_priority = 0);
  bool invalidate_dirty(Key key);
  std::vector<core::DirtyLine> dirty_lines() const { return dirty_; }

  virtual bool contains(Key key) const = 0;
  virtual std::size_t size() const = 0;

  /// Every resident key, in no particular order.
  virtual std::vector<Key> resident() const = 0;

  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }
  const WriteStats& write_stats() const { return write_stats_; }

 protected:
  virtual bool handle(Key key, int priority) = 0;
  virtual void handle_install(Key key, int priority) { handle(key, priority); }
  void note_eviction(Key key);

 private:
  std::size_t capacity_;
  CacheStats stats_;
  WriteStats write_stats_;
  std::vector<core::DirtyLine> dirty_;         // mark order, linear scans
  std::vector<core::DirtyLine> evicted_dirty_; // pending write-backs
};

/// Golden model for the optimized policy `id`. LRFU uses the same default
/// lambda as the optimized LrfuCache.
std::unique_ptr<ReferencePolicy> make_reference_policy(PolicyId id,
                                                       std::size_t capacity);

}  // namespace fbf::cache::reference
