// First-in first-out replacement: eviction order ignores hits entirely.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/policy.h"

namespace fbf::cache {

class FifoCache final : public CachePolicy {
 public:
  explicit FifoCache(std::size_t capacity);

  bool contains(Key key) const override;
  std::size_t size() const override { return index_.size(); }
  const char* name() const override { return "FIFO"; }

 protected:
  bool handle(Key key, int priority) override;

 private:
  std::list<Key> queue_;  // front = oldest
  std::unordered_map<Key, std::list<Key>::iterator> index_;
};

}  // namespace fbf::cache
