#include "cache/twoq.h"

#include <algorithm>

namespace fbf::cache {

TwoQCache::TwoQCache(std::size_t capacity)
    : CachePolicy(capacity),
      kin_(std::max<std::size_t>(1, capacity / 4)),
      kout_(std::max<std::size_t>(1, capacity / 2)) {}

bool TwoQCache::contains(Key key) const {
  return a1in_index_.count(key) > 0 || am_index_.count(key) > 0;
}

void TwoQCache::evict_for_insert() {
  if (size() < capacity()) {
    return;
  }
  if (a1in_index_.size() > kin_ ||
      (am_index_.empty() && !a1in_index_.empty())) {
    // Reclaim from probation; remember the key in the ghost list.
    const Key victim = a1in_.front();
    a1in_.pop_front();
    a1in_index_.erase(victim);
    a1out_.push_back(victim);
    a1out_index_.emplace(victim, std::prev(a1out_.end()));
    if (a1out_index_.size() > kout_) {
      a1out_index_.erase(a1out_.front());
      a1out_.pop_front();
    }
  } else {
    const Key victim = am_.front();
    am_.pop_front();
    am_index_.erase(victim);
  }
  note_eviction();
}

bool TwoQCache::handle(Key key, int /*priority*/) {
  const auto am_it = am_index_.find(key);
  if (am_it != am_index_.end()) {
    am_.splice(am_.end(), am_, am_it->second);
    return true;
  }
  if (a1in_index_.count(key) > 0) {
    return true;  // stays put in probation, per simplified 2Q
  }
  const auto ghost = a1out_index_.find(key);
  if (ghost != a1out_index_.end()) {
    a1out_.erase(ghost->second);
    a1out_index_.erase(ghost);
    evict_for_insert();
    am_.push_back(key);
    am_index_.emplace(key, std::prev(am_.end()));
    return false;
  }
  evict_for_insert();
  a1in_.push_back(key);
  a1in_index_.emplace(key, std::prev(a1in_.end()));
  return false;
}

void TwoQCache::handle_install(Key key, int /*priority*/) {
  if (am_index_.count(key) > 0 || a1in_index_.count(key) > 0) {
    return;  // no reuse evidence: Am recency stays untouched
  }
  // A ghosted key re-enters probation, not the protected queue — only a
  // demand re-reference proves it is worth protecting.
  const auto ghost = a1out_index_.find(key);
  if (ghost != a1out_index_.end()) {
    a1out_.erase(ghost->second);
    a1out_index_.erase(ghost);
  }
  evict_for_insert();
  a1in_.push_back(key);
  a1in_index_.emplace(key, std::prev(a1in_.end()));
}

}  // namespace fbf::cache
