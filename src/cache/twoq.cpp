#include "cache/twoq.h"

#include <algorithm>

namespace fbf::cache {

namespace {

std::size_t directory_bound(std::size_t capacity, std::size_t kout) {
  // Residents + ghosts, +1 because an eviction pushes the victim into the
  // ghost queue before the over-full ghost queue is trimmed.
  return capacity > 0 ? capacity + kout + 1 : 0;
}

}  // namespace

TwoQCache::TwoQCache(std::size_t capacity)
    : CachePolicy(capacity),
      kin_(std::max<std::size_t>(1, capacity / 4)),
      kout_(std::max<std::size_t>(1, capacity / 2)),
      slab_(directory_bound(capacity, kout_)),
      index_(directory_bound(capacity, kout_)) {}

bool TwoQCache::contains(Key key) const {
  const core::Index n = index_.find(key);
  return n != core::kNil && slab_[n].data.where != Where::A1out;
}

void TwoQCache::drop(core::Index n, core::IntrusiveList& list) {
  list.erase(slab_, n);
  index_.erase(slab_[n].key);
  slab_.release(n);
}

void TwoQCache::evict_for_insert() {
  if (size() < capacity()) {
    return;
  }
  Key victim_key;
  if (a1in_.size() > kin_ || (am_.empty() && !a1in_.empty())) {
    // Reclaim from probation; remember the key in the ghost queue.
    const core::Index victim = a1in_.pop_front(slab_);
    victim_key = slab_[victim].key;
    slab_[victim].data.where = Where::A1out;
    a1out_.push_back(slab_, victim);
    if (a1out_.size() > kout_) {
      drop(a1out_.front(), a1out_);
    }
  } else {
    const core::Index victim = am_.front();
    victim_key = slab_[victim].key;
    drop(victim, am_);
  }
  note_eviction(victim_key);
}

void TwoQCache::admit_to_a1in(Key key) {
  evict_for_insert();
  const core::Index n = slab_.acquire(key);
  slab_[n].data.where = Where::A1in;
  a1in_.push_back(slab_, n);
  index_.insert(key, n);
}

bool TwoQCache::handle(Key key, int /*priority*/) {
  const core::Index n = index_.find(key);
  if (n != core::kNil) {
    switch (slab_[n].data.where) {
      case Where::Am:
        am_.move_to_back(slab_, n);
        return true;
      case Where::A1in:
        return true;  // stays put in probation, per simplified 2Q
      case Where::A1out: {
        // Ghost hit: the key proved reuse, promote into the main queue.
        drop(n, a1out_);
        evict_for_insert();
        const core::Index fresh = slab_.acquire(key);
        slab_[fresh].data.where = Where::Am;
        am_.push_back(slab_, fresh);
        index_.insert(key, fresh);
        return false;
      }
    }
  }
  admit_to_a1in(key);
  return false;
}

void TwoQCache::handle_install(Key key, int /*priority*/) {
  const core::Index n = index_.find(key);
  if (n != core::kNil && slab_[n].data.where != Where::A1out) {
    return;  // no reuse evidence: Am recency stays untouched
  }
  // A ghosted key re-enters probation, not the protected queue — only a
  // demand re-reference proves it is worth protecting.
  if (n != core::kNil) {
    drop(n, a1out_);
  }
  admit_to_a1in(key);
}


// Batch adapters (policy.h): same per-element semantics as the scalar
// hooks, but the class is final here, so the per-element calls
// devirtualize and the virtual hop is paid once per batch.
std::size_t TwoQCache::handle_batch(const Key* keys,
                           const std::uint8_t* priorities, std::size_t n,
                           std::uint64_t* hit_words) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (handle(keys[i], static_cast<int>(priorities[i]))) {
      hit_words[i >> 6] |= std::uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

void TwoQCache::handle_install_batch(const Key* keys,
                              const std::uint8_t* priorities,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    handle_install(keys[i], static_cast<int>(priorities[i]));
  }
}

}  // namespace fbf::cache
