#include "cache/lru.h"

#include "util/check.h"

namespace fbf::cache {

LruCache::LruCache(std::size_t capacity)
    : CachePolicy(capacity), slab_(capacity), index_(capacity) {}

bool LruCache::contains(Key key) const {
  return index_.find(key) != core::kNil;
}

Key LruCache::lru_key() const {
  FBF_CHECK(!order_.empty(), "lru_key on empty cache");
  return slab_[order_.front()].key;
}

bool LruCache::handle(Key key, int /*priority*/) {
  const core::Index n = index_.find(key);
  if (n != core::kNil) {
    order_.move_to_back(slab_, n);
    return true;
  }
  if (slab_.in_use() >= capacity()) {
    const core::Index victim = order_.pop_front(slab_);
    index_.erase(slab_[victim].key);
    slab_.release(victim);
    note_eviction();
  }
  const core::Index fresh = slab_.acquire(key);
  order_.push_back(slab_, fresh);
  index_.insert(key, fresh);
  return false;
}

}  // namespace fbf::cache
