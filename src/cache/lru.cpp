#include "cache/lru.h"

#include "util/check.h"

namespace fbf::cache {

LruCache::LruCache(std::size_t capacity) : CachePolicy(capacity) {}

bool LruCache::contains(Key key) const { return index_.count(key) > 0; }

Key LruCache::lru_key() const {
  FBF_CHECK(!order_.empty(), "lru_key on empty cache");
  return order_.front();
}

bool LruCache::handle(Key key, int /*priority*/) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    order_.splice(order_.end(), order_, it->second);
    return true;
  }
  if (index_.size() >= capacity()) {
    index_.erase(order_.front());
    order_.pop_front();
    note_eviction();
  }
  order_.push_back(key);
  index_.emplace(key, std::prev(order_.end()));
  return false;
}

}  // namespace fbf::cache
