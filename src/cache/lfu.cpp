#include "cache/lfu.h"

#include "util/check.h"

namespace fbf::cache {

LfuCache::LfuCache(std::size_t capacity)
    : CachePolicy(capacity),
      nodes_(capacity),
      // One bucket per resident key at worst, +1 because a bump acquires
      // the destination class before the source class can drain.
      buckets_(capacity > 0 ? capacity + 1 : 0),
      index_(capacity) {}

bool LfuCache::contains(Key key) const {
  return index_.find(key) != core::kNil;
}

std::uint64_t LfuCache::frequency(Key key) const {
  const core::Index n = index_.find(key);
  return n == core::kNil ? 0 : buckets_[nodes_[n].data.bucket].data.freq;
}

void LfuCache::place(core::Index n, std::uint64_t freq, core::Index after) {
  core::Index target =
      after == core::kNil ? by_freq_.front() : buckets_[after].next;
  if (target == core::kNil || buckets_[target].data.freq != freq) {
    target = buckets_.acquire(/*key=*/freq);
    buckets_[target].data.freq = freq;
    if (after == core::kNil) {
      by_freq_.push_front(buckets_, target);
    } else {
      by_freq_.insert_after(buckets_, after, target);
    }
  }
  buckets_[target].data.members.push_back(nodes_, n);
  nodes_[n].data.bucket = target;
}

void LfuCache::release_if_empty(core::Index bucket) {
  if (buckets_[bucket].data.members.empty()) {
    by_freq_.erase(buckets_, bucket);
    buckets_.release(bucket);
  }
}

void LfuCache::bump(core::Index n) {
  const core::Index b = nodes_[n].data.bucket;
  buckets_[b].data.members.erase(nodes_, n);
  place(n, buckets_[b].data.freq + 1, b);
  release_if_empty(b);
}

bool LfuCache::handle(Key key, int /*priority*/) {
  const core::Index n = index_.find(key);
  if (n != core::kNil) {
    bump(n);
    return true;
  }
  if (nodes_.in_use() >= capacity()) {
    const core::Index lowest = by_freq_.front();
    FBF_CHECK(lowest != core::kNil, "LFU bookkeeping empty at eviction");
    const core::Index victim =
        buckets_[lowest].data.members.pop_front(nodes_);
    const Key victim_key = nodes_[victim].key;
    index_.erase(victim_key);
    nodes_.release(victim);
    release_if_empty(lowest);
    note_eviction(victim_key);
  }
  const core::Index fresh = nodes_.acquire(key);
  place(fresh, /*freq=*/1, core::kNil);
  index_.insert(key, fresh);
  return false;
}


// Batch adapters (policy.h): same per-element semantics as the scalar
// hooks, but the class is final here, so the per-element calls
// devirtualize and the virtual hop is paid once per batch.
std::size_t LfuCache::handle_batch(const Key* keys,
                           const std::uint8_t* priorities, std::size_t n,
                           std::uint64_t* hit_words) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (handle(keys[i], static_cast<int>(priorities[i]))) {
      hit_words[i >> 6] |= std::uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

void LfuCache::handle_install_batch(const Key* keys,
                              const std::uint8_t* priorities,
                              std::size_t n) {
  // No custom install hook: an install is a demand access minus the stats
  // (policy.h), so the batch folds straight through handle().
  for (std::size_t i = 0; i < n; ++i) {
    handle(keys[i], static_cast<int>(priorities[i]));
  }
}

}  // namespace fbf::cache
