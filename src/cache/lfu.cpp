#include "cache/lfu.h"

#include "util/check.h"

namespace fbf::cache {

LfuCache::LfuCache(std::size_t capacity) : CachePolicy(capacity) {}

bool LfuCache::contains(Key key) const { return index_.count(key) > 0; }

std::uint64_t LfuCache::frequency(Key key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second.freq;
}

void LfuCache::bump(Key key, Entry& e) {
  auto list_it = by_freq_.find(e.freq);
  list_it->second.erase(e.pos);
  if (list_it->second.empty()) {
    by_freq_.erase(list_it);
  }
  ++e.freq;
  auto& dst = by_freq_[e.freq];
  dst.push_back(key);
  e.pos = std::prev(dst.end());
}

bool LfuCache::handle(Key key, int /*priority*/) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bump(key, it->second);
    return true;
  }
  if (index_.size() >= capacity()) {
    auto lowest = by_freq_.begin();
    FBF_CHECK(lowest != by_freq_.end(), "LFU bookkeeping empty at eviction");
    const Key victim = lowest->second.front();
    lowest->second.pop_front();
    if (lowest->second.empty()) {
      by_freq_.erase(lowest);
    }
    index_.erase(victim);
    note_eviction();
  }
  auto& dst = by_freq_[1];
  dst.push_back(key);
  index_.emplace(key, Entry{1, std::prev(dst.end())});
  return false;
}

}  // namespace fbf::cache
