// Simplified 2Q (Johnson & Shasha, VLDB'94): a FIFO probation queue
// (A1in), a ghost history (A1out), and a protected LRU main queue (Am).
#pragma once

#include <list>
#include <unordered_map>

#include "cache/policy.h"

namespace fbf::cache {

class TwoQCache final : public CachePolicy {
 public:
  explicit TwoQCache(std::size_t capacity);

  bool contains(Key key) const override;
  std::size_t size() const override {
    return a1in_index_.size() + am_index_.size();
  }
  const char* name() const override { return "2Q"; }

  std::size_t a1in_size() const { return a1in_index_.size(); }
  std::size_t a1out_size() const { return a1out_index_.size(); }
  std::size_t am_size() const { return am_index_.size(); }

 protected:
  bool handle(Key key, int priority) override;
  void handle_install(Key key, int priority) override;

 private:
  void evict_for_insert();

  std::size_t kin_;   ///< A1in capacity (25% of total, >= 1)
  std::size_t kout_;  ///< A1out ghost capacity (50% of total, >= 1)

  std::list<Key> a1in_;  // FIFO, front = oldest
  std::unordered_map<Key, std::list<Key>::iterator> a1in_index_;
  std::list<Key> a1out_;  // ghost FIFO
  std::unordered_map<Key, std::list<Key>::iterator> a1out_index_;
  std::list<Key> am_;  // LRU, front = LRU
  std::unordered_map<Key, std::list<Key>::iterator> am_index_;
};

}  // namespace fbf::cache
