// Simplified 2Q (Johnson & Shasha, VLDB'94): a FIFO probation queue
// (A1in), a ghost history (A1out), and a protected LRU main queue (Am).
//
// Flat core layout: resident and ghost entries share one node slab and one
// key index; each node's payload tags which queue it is in, and the three
// intrusive queues thread through the shared slab. Zero per-operation
// allocation (slab sized for capacity residents + kout ghosts + 1 in
// flight during an eviction).
#pragma once

#include "cache/core/hash_index.h"
#include "cache/core/intrusive_list.h"
#include "cache/core/slab.h"
#include "cache/policy.h"

namespace fbf::cache {

class TwoQCache final : public CachePolicy {
 public:
  explicit TwoQCache(std::size_t capacity);

  bool contains(Key key) const override;
  std::size_t size() const override { return a1in_.size() + am_.size(); }
  const char* name() const override { return "2Q"; }

  std::size_t a1in_size() const { return a1in_.size(); }
  std::size_t a1out_size() const { return a1out_.size(); }
  std::size_t am_size() const { return am_.size(); }

 protected:
  bool handle(Key key, int priority) override;
  void handle_install(Key key, int priority) override;
  std::size_t handle_batch(const Key* keys, const std::uint8_t* priorities,
                           std::size_t n, std::uint64_t* hit_words) override;
  void handle_install_batch(const Key* keys, const std::uint8_t* priorities,
                            std::size_t n) override;

 private:
  enum class Where : std::uint8_t { A1in, A1out, Am };
  struct Tag {
    Where where = Where::A1in;
  };

  void evict_for_insert();
  void admit_to_a1in(Key key);
  /// Drops a ghost node (key leaves the directory entirely).
  void drop(core::Index n, core::IntrusiveList& list);

  std::size_t kin_;   ///< A1in capacity (25% of total, >= 1)
  std::size_t kout_;  ///< A1out ghost capacity (50% of total, >= 1)

  core::NodeSlab<Tag> slab_;
  core::KeyIndexTable index_;  ///< resident and ghost keys
  core::IntrusiveList a1in_;   // FIFO, front = oldest
  core::IntrusiveList a1out_;  // ghost FIFO
  core::IntrusiveList am_;     // LRU, front = LRU
};

}  // namespace fbf::cache
