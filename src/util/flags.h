// Minimal command-line flag parsing for bench/example binaries.
//
// Supports "--name=value", "--name value", and boolean "--name". Numeric
// getters parse strictly (the whole value must be a number) and raise
// CheckError on garbage like "--errors=4oo" instead of silently truncating.
// Callers that know their full flag vocabulary should call check_known()
// after construction so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fbf::util {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. "--p=5,7,11".
  std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const;

  /// Comma-separated number list, e.g. "--fault-disk-fail-at-ms=100,2500".
  std::vector<double> get_double_list(
      const std::string& name, const std::vector<double>& fallback) const;

  /// Comma-separated string list.
  std::vector<std::string> get_string_list(
      const std::string& name, const std::vector<std::string>& fallback) const;

  /// Raises CheckError if any parsed flag is not in `known`, naming the
  /// offender and listing the accepted flags.
  void check_known(const std::vector<std::string_view>& known) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fbf::util
