// Over-aligned allocator so SIMD kernels can rely on aligned loads from the
// start of every buffer (std::vector's default allocator only guarantees
// alignof(std::max_align_t), typically 16).
#pragma once

#include <cstddef>
#include <new>

namespace fbf::util {

template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "alignment below natural alignment");

  using value_type = T;

  /// Explicit rebind: the default allocator_traits machinery cannot rebind
  /// across the non-type Alignment parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

}  // namespace fbf::util
