// Transparent-hugepage advice for large flat arenas.
#pragma once

#include <cstddef>

namespace fbf::util {

/// Best-effort MADV_HUGEPAGE on the 2 MiB-aligned interior of
/// [data, data + bytes). Arenas probed randomly at storm scale span tens
/// of thousands of 4 KiB TLB entries; huge pages cut that two orders of
/// magnitude. Must be called before the range is first touched to take
/// effect on this run (already-faulted pages only collapse lazily).
/// No-op off Linux or when the kernel rejects the advice.
void advise_hugepages(void* data, std::size_t bytes) noexcept;

}  // namespace fbf::util
