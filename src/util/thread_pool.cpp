#include "util/thread_pool.h"

#include <algorithm>

namespace fbf::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    // The in-flight count must drop even when the task throws, or wait_idle
    // would deadlock; the guard also fires the idle signal on the throw path.
    struct InFlightGuard {
      ThreadPool& pool;
      ~InFlightGuard() {
        std::lock_guard<std::mutex> lock(pool.mu_);
        --pool.in_flight_;
        if (pool.tasks_.empty() && pool.in_flight_ == 0) {
          pool.cv_idle_.notify_all();
        }
      }
    } guard{*this};
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
  }
}

}  // namespace fbf::util
