// Runtime invariant checking that stays on in release builds.
//
// The simulator and codec validate structural invariants (chain consistency,
// index bounds, solvability) with FBF_CHECK; violations indicate programmer
// error or corrupted inputs and throw fbf::util::CheckError.
#pragma once

#include <stdexcept>
#include <string>

namespace fbf::util {

/// Thrown when an FBF_CHECK fails. Carries file/line plus a caller message.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

}  // namespace fbf::util

/// Always-on invariant check. `msg` is any expression convertible to
/// std::string via operator+ with a narrow literal (use std::to_string for
/// numerics).
#define FBF_CHECK(cond, msg)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::fbf::util::check_failed(#cond, __FILE__, __LINE__, (msg));       \
    }                                                                    \
  } while (false)
