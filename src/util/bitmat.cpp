#include "util/bitmat.h"

#include <algorithm>

#include "util/check.h"

namespace fbf::util {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), bits_(rows * ((cols + 63) / 64), 0) {}

bool BitMatrix::get(std::size_t r, std::size_t c) const {
  FBF_CHECK(r < rows_ && c < cols_, "BitMatrix::get out of range");
  return (bits_[r * words_per_row() + c / 64] >> (c % 64)) & 1u;
}

void BitMatrix::set(std::size_t r, std::size_t c, bool v) {
  FBF_CHECK(r < rows_ && c < cols_, "BitMatrix::set out of range");
  auto& word = bits_[r * words_per_row() + c / 64];
  const std::uint64_t mask = std::uint64_t{1} << (c % 64);
  if (v) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

void BitMatrix::flip(std::size_t r, std::size_t c) { set(r, c, !get(r, c)); }

void BitMatrix::xor_rows(std::size_t dst, std::size_t src) {
  FBF_CHECK(dst < rows_ && src < rows_, "BitMatrix::xor_rows out of range");
  const std::size_t w = words_per_row();
  for (std::size_t i = 0; i < w; ++i) {
    bits_[dst * w + i] ^= bits_[src * w + i];
  }
}

void BitMatrix::swap_rows(std::size_t a, std::size_t b) {
  FBF_CHECK(a < rows_ && b < rows_, "BitMatrix::swap_rows out of range");
  const std::size_t w = words_per_row();
  for (std::size_t i = 0; i < w; ++i) {
    std::swap(bits_[a * w + i], bits_[b * w + i]);
  }
}

std::size_t BitMatrix::rank() const {
  BitMatrix m = *this;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows_ && !m.get(pivot, col)) {
      ++pivot;
    }
    if (pivot == rows_) {
      continue;
    }
    m.swap_rows(rank, pivot);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r != rank && m.get(r, col)) {
        m.xor_rows(r, rank);
      }
    }
    ++rank;
  }
  return rank;
}

}  // namespace fbf::util
