#include "util/hugepage.h"

#if defined(__linux__)
#include <sys/mman.h>

#include <cstdint>
#endif

namespace fbf::util {

void advise_hugepages(void* data, std::size_t bytes) noexcept {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr std::uintptr_t kHugeBytes = std::uintptr_t{2} << 20;
  const auto addr = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t lo = (addr + kHugeBytes - 1) & ~(kHugeBytes - 1);
  const std::uintptr_t hi = (addr + bytes) & ~(kHugeBytes - 1);
  if (hi > lo) {
    // Advisory only: failure (old kernel, THP disabled) changes nothing
    // observable, so the return value is deliberately ignored.
    ::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
  }
#else
  (void)data;
  (void)bytes;
#endif
}

}  // namespace fbf::util
