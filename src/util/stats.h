// Streaming statistics used by the simulator's metric collectors.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace fbf::util {

/// Single-pass accumulator for count / sum / mean / variance / extrema.
/// Uses Welford's algorithm so variance stays numerically stable over the
/// millions of response-time samples a sweep produces.
class Accumulator {
 public:
  // add() is defined inline: the simulators feed it one sample per
  // completed I/O, where the cross-TU call costs more than the update.
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  void merge(const Accumulator& other);

  std::uint64_t count() const { return n_; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const;  ///< population variance; 0 when n < 2
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Reservoir of samples for percentile queries. Keeps at most `capacity`
/// samples via Vitter's Algorithm R: element #k of the stream survives
/// with probability capacity/k, so every stream position is retained with
/// equal probability capacity/seen. The sampler owns a private seeded Rng,
/// making runs reproducible: same seed + same insertion order = same
/// retained set.
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity = 4096,
                     std::uint64_t seed = 0x7e5e7e5e5eedull);

  // add() is defined inline for the same per-sample reason as
  // Accumulator::add; the Rng draw happens on every post-fill add so the
  // stream stays aligned with the sample stream (Algorithm R).
  void add(double x) {
    ++seen_;
    if (samples_.size() < capacity_) {
      sorted_ = false;
      samples_.push_back(x);
      return;
    }
    const auto j = static_cast<std::uint64_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(seen_) - 1));
    if (j < capacity_) {
      sorted_ = false;
      samples_[static_cast<std::size_t>(j)] = x;
    }
  }
  std::uint64_t count() const { return seen_; }

  /// Retained samples, unordered (percentile() sorts the buffer in place).
  const std::vector<double>& samples() const { return samples_; }

  /// q in [0, 1]; returns 0 when empty. Sorts internally on demand.
  double percentile(double q) const;

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  Rng rng_;
  mutable bool sorted_ = false;
  mutable std::vector<double> samples_;
};

}  // namespace fbf::util
