// Aligned-text and CSV table rendering for benches and examples.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fbf::util {

/// Formats a double with `digits` fractional digits (no std::format on this
/// toolchain).
std::string fmt_double(double v, int digits = 3);

/// Formats a ratio as a percentage string, e.g. 0.1234 -> "12.34%".
std::string fmt_percent(double ratio, int digits = 2);

/// Human-readable byte size: 32768 -> "32KB", 2147483648 -> "2GB".
std::string fmt_bytes(std::uint64_t bytes);

/// Accumulates string rows and prints them column-aligned or as CSV.
class Table {
 public:
  explicit Table(std::string title = "");

  Table& headers(std::vector<std::string> h);
  Table& add_row(std::vector<std::string> row);
  std::size_t num_rows() const { return rows_.size(); }

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fbf::util
