#include "util/table.h"

#include <cstdint>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace fbf::util {

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_percent(double ratio, int digits) {
  return fmt_double(ratio * 100.0, digits) + "%";
}

std::string fmt_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  std::uint64_t v = bytes;
  while (v >= 1024 && v % 1024 == 0 && unit < 4) {
    v /= 1024;
    ++unit;
  }
  return std::to_string(v) + kUnits[unit];
}

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::headers(std::vector<std::string> h) {
  headers_ = std::move(h);
  return *this;
}

Table& Table::add_row(std::vector<std::string> row) {
  FBF_CHECK(headers_.empty() || row.size() == headers_.size(),
            "row width must match header width");
  rows_.push_back(std::move(row));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) {
      widths.resize(row.size(), 0);
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(headers_);
  for (const auto& r : rows_) {
    widen(r);
  }

  if (!title_.empty()) {
    os << "== " << title_ << " ==\n";
  }
  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        for (std::size_t pad = row[i].size(); pad < widths[i] + 2; ++pad) {
          os << ' ';
        }
      }
    }
    os << '\n';
  };
  if (!headers_.empty()) {
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths) {
      total += w + 2;
    }
    for (std::size_t i = 0; i + 2 < total; ++i) {
      os << '-';
    }
    os << '\n';
  }
  for (const auto& r : rows_) {
    emit(r);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) {
        os << ',';
      }
      os << row[i];
    }
    os << '\n';
  };
  if (!headers_.empty()) {
    emit(headers_);
  }
  for (const auto& r : rows_) {
    emit(r);
  }
}

}  // namespace fbf::util
