// Deterministic random number generation.
//
// All stochastic components (workload generators, data fills) take an
// explicit Rng so that every experiment is reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "util/check.h"

namespace fbf::util {

/// Seeded pseudo-random source. Thin wrapper over std::mt19937_64 with
/// convenience samplers. Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi. Defined
  /// inline: reservoir sampling draws once per recovery-read completion,
  /// where the cross-TU call outweighs the draw itself.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    FBF_CHECK(lo <= hi, "uniform_int requires lo <= hi");
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform unsigned 64-bit value.
  std::uint64_t next_u64() { return engine_(); }

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Zipf-like rank sampler over [0, n) with skew `s` (s = 0 is uniform).
  /// Used by the application-trace generator for hot-spot locality.
  std::size_t zipf(std::size_t n, double s);

  /// Picks a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size);

  /// Fills a byte span with pseudo-random bytes.
  void fill_bytes(std::span<std::byte> out);

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& v);

 private:
  std::mt19937_64 engine_;
};

}  // namespace fbf::util
