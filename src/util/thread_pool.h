// Fixed-size worker pool for running independent experiment configurations
// in parallel during sweeps. Experiments share no mutable state, so the pool
// needs only a task queue — no futures of results; callers capture outputs
// into pre-sized slots.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fbf::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. If the task throws, the first exception is captured
  /// and rethrown from the next wait_idle(); later exceptions from the same
  /// batch are dropped. An exception never retrieved before destruction is
  /// discarded.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any of them raised (if any).
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> tasks_;
  std::exception_ptr first_error_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
/// Work is distributed dynamically: one task per pool thread, each grabbing
/// chunks of indices from a shared atomic cursor, so per-iteration
/// scheduling costs no queue traffic or allocation.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace fbf::util
