// Fixed-size worker pool for running independent experiment configurations
// in parallel during sweeps. Experiments share no mutable state, so the pool
// needs only a task queue — no futures of results; callers capture outputs
// into pre-sized slots.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <new>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace fbf::util {

/// Move-only type-erased callable with inline storage. Callables that fit
/// the inline buffer and are nothrow-move-constructible never touch the
/// heap — which covers the pool's hot submitter, parallel_for's
/// chunk-puller (four words of captures). Anything larger is boxed behind
/// a single owning pointer kept in the same storage.
class Task {
 public:
  Task() = default;

  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<F>, Task>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor): submit(lambda)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vtable_ = &kInlineVTable<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vtable_ = &kBoxedVTable<Fn>;
    }
  }

  Task(Task&& other) noexcept { move_from(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(storage_); }

  static constexpr std::size_t kInlineBytes = 48;

  /// True when callables of type Fn are stored without a heap allocation.
  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*move)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static Fn* as(void* storage) {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }

  template <typename Fn>
  static constexpr VTable kInlineVTable{
      [](void* s) { (*as<Fn>(s))(); },
      [](void* dst, void* src) noexcept {
        Fn* f = as<Fn>(src);
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* s) noexcept { as<Fn>(s)->~Fn(); }};

  // The boxed forms store a single owning Fn* in the buffer; the pointer
  // itself is trivially destructible, so move/destroy only transfer or
  // release the box.
  template <typename Fn>
  static constexpr VTable kBoxedVTable{
      [](void* s) { (**as<Fn*>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*as<Fn*>(src));
      },
      [](void* s) noexcept { delete *as<Fn*>(s); }};

  void move_from(Task& other) noexcept {
    if (other.vtable_ != nullptr) {
      vtable_ = other.vtable_;
      vtable_->move(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task (any callable converts to Task; small callables are
  /// stored inline, allocation-free). If the task throws, the first
  /// exception is captured and rethrown from the next wait_idle(); later
  /// exceptions from the same batch are dropped. An exception never
  /// retrieved before destruction is discarded.
  void submit(Task task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any of them raised (if any).
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::queue<Task> tasks_;
  std::exception_ptr first_error_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
/// Work is distributed dynamically: one task per pool thread, each grabbing
/// chunks of indices from a shared atomic cursor, so per-iteration
/// scheduling costs no queue traffic or allocation — and the per-thread
/// task itself stays in Task's inline storage.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  if (n == 0) {
    return;
  }
  const std::size_t workers = std::min(n, pool.thread_count());
  const std::size_t chunk = std::max<std::size_t>(1, n / (workers * 8));
  std::atomic<std::size_t> next{0};
  auto* body = &fn;  // one pointer: keeps the capture inside Task's buffer
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&next, body, n, chunk] {
      for (;;) {
        const std::size_t begin =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) {
          return;
        }
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) {
          (*body)(i);
        }
      }
    });
  }
  // `next` and `fn` outlive the tasks: wait_idle returns only after every
  // submitted task has finished.
  pool.wait_idle();
}

}  // namespace fbf::util
