#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fbf::util {

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Reservoir::Reservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  FBF_CHECK(capacity_ > 0, "reservoir capacity must be positive");
  samples_.reserve(capacity_);
}

double Reservoir::percentile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  FBF_CHECK(q >= 0.0 && q <= 1.0, "percentile q out of range");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace fbf::util
