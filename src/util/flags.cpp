#include "util/flags.h"

#include <algorithm>
#include <charconv>

#include "util/check.h"

namespace fbf::util {

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::int64_t parse_int(const std::string& name, const std::string& value) {
  std::int64_t parsed = 0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  FBF_CHECK(!value.empty() && ec == std::errc() && ptr == end,
            "flag --" + name + " expects an integer, got \"" + value + "\"");
  return parsed;
}

double parse_double(const std::string& name, const std::string& value) {
  double parsed = 0.0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  FBF_CHECK(!value.empty() && ec == std::errc() && ptr == end,
            "flag --" + name + " expects a number, got \"" + value + "\"");
  return parsed;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  return parse_int(name, it->second);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  return parse_double(name, it->second);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  FBF_CHECK(false, "flag --" + name + " expects a boolean, got \"" + v + "\"");
  return fallback;
}

std::vector<std::int64_t> Flags::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  std::vector<std::int64_t> out;
  for (const auto& piece : split_csv(it->second)) {
    out.push_back(parse_int(name, piece));
  }
  return out;
}

std::vector<double> Flags::get_double_list(
    const std::string& name, const std::vector<double>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  std::vector<double> out;
  for (const auto& piece : split_csv(it->second)) {
    out.push_back(parse_double(name, piece));
  }
  return out;
}

std::vector<std::string> Flags::get_string_list(
    const std::string& name, const std::vector<std::string>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  std::vector<std::string> out;
  for (auto& piece : split_csv(it->second)) {
    if (!piece.empty()) {
      out.push_back(piece);
    }
  }
  return out;
}

void Flags::check_known(const std::vector<std::string_view>& known) const {
  for (const auto& [name, value] : values_) {
    if (std::find(known.begin(), known.end(), name) != known.end()) {
      continue;
    }
    std::string msg = "unknown flag --" + name + "; accepted flags:";
    for (const auto& k : known) {
      msg += " --";
      msg += k;
    }
    FBF_CHECK(false, msg);
  }
}

}  // namespace fbf::util
