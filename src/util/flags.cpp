#include "util/flags.h"

#include <cstdlib>

#include "util/check.h"

namespace fbf::util {

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> Flags::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  std::vector<std::int64_t> out;
  for (const auto& piece : split_csv(it->second)) {
    if (!piece.empty()) {
      out.push_back(std::strtoll(piece.c_str(), nullptr, 10));
    }
  }
  return out;
}

std::vector<std::string> Flags::get_string_list(
    const std::string& name, const std::vector<std::string>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  std::vector<std::string> out;
  for (auto& piece : split_csv(it->second)) {
    if (!piece.empty()) {
      out.push_back(piece);
    }
  }
  return out;
}

}  // namespace fbf::util
