#include "util/check.h"

#include <sstream>

namespace fbf::util {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "FBF_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw CheckError(os.str());
}

}  // namespace fbf::util
