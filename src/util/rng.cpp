#include "util/rng.h"

#include <cmath>

namespace fbf::util {

double Rng::uniform01() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  FBF_CHECK(lo <= hi, "uniform_real requires lo <= hi");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  FBF_CHECK(p >= 0.0 && p <= 1.0, "bernoulli probability out of range");
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  FBF_CHECK(mean > 0.0, "exponential mean must be positive");
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  FBF_CHECK(n > 0, "zipf over empty domain");
  if (s <= 0.0) {
    return index(n);
  }
  // Inverse-CDF sampling by rejection over the (approximate) normalizing
  // integral; adequate for trace generation where exactness is not needed.
  const double exponent = 1.0 - s;
  const double h_n = (std::pow(static_cast<double>(n), exponent) - 1.0) /
                     exponent;
  for (;;) {
    const double u = uniform01();
    const double x = std::pow(u * exponent * h_n + 1.0, 1.0 / exponent);
    const std::size_t k = static_cast<std::size_t>(x) - 1;
    if (k < n) {
      return k;
    }
  }
}

std::size_t Rng::index(std::size_t size) {
  FBF_CHECK(size > 0, "index over empty container");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

void Rng::fill_bytes(std::span<std::byte> out) {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t v = engine_();
    for (int b = 0; b < 8; ++b) {
      out[i + static_cast<std::size_t>(b)] =
          static_cast<std::byte>((v >> (8 * b)) & 0xff);
    }
    i += 8;
  }
  if (i < out.size()) {
    std::uint64_t v = engine_();
    for (; i < out.size(); ++i) {
      out[i] = static_cast<std::byte>(v & 0xff);
      v >>= 8;
    }
  }
}

void Rng::shuffle(std::vector<std::size_t>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[index(i)]);
  }
}

}  // namespace fbf::util
