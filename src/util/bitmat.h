// Dense GF(2) matrices backed by 64-bit words.
//
// Used for the erasure-decodability (MDS) oracle: each parity chain is one
// XOR equation over the erased cells; a triple-column erasure is recoverable
// iff the incidence matrix has full column rank.
#pragma once

#include <cstdint>
#include <vector>

namespace fbf::util {

/// Row-major bit matrix over GF(2).
class BitMatrix {
 public:
  BitMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  bool get(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, bool v);
  void flip(std::size_t r, std::size_t c);

  /// row[dst] ^= row[src]
  void xor_rows(std::size_t dst, std::size_t src);
  void swap_rows(std::size_t a, std::size_t b);

  /// Rank via in-place-on-a-copy Gaussian elimination.
  std::size_t rank() const;

  /// True iff the columns are linearly independent (rank == cols).
  bool full_column_rank() const { return rank() == cols_; }

 private:
  std::size_t words_per_row() const { return (cols_ + 63) / 64; }

  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace fbf::util
